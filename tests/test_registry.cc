// Tests for the multi-model registry: lifecycle state machine, typed
// refusals, atomic hot reload under live traffic (completed responses
// bit-identical to exactly one of the two images, zero drops, zero spurious
// refusals), the per-model reload circuit breaker, bulkhead overload
// isolation, snapshot cold-start, and the chaos matrix — concurrent
// reloads × unloads × mixed-model traffic × fault schedules, with the
// registry-wide accounting identity closing exactly.

#include "serve/registry/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "io/ensemble_snapshot.h"
#include "predict/flat_ensemble.h"

namespace treewm::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr size_t kFeatures = 6;

std::shared_ptr<const predict::FlatEnsemble> MakeImage(uint64_t seed,
                                                       size_t num_trees = 7) {
  auto d = data::synthetic::MakeBlobs(seed, 240, kFeatures, 1.5);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  auto forest = forest::RandomForest::Fit(d, {}, config).MoveValue();
  return std::make_shared<predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));
}

ModelRegistryOptions SmallOptions(size_t max_models = 8,
                                  size_t breaker_threshold = 3,
                                  bool start_dispatcher = true,
                                  size_t queue_capacity = 1024) {
  ModelRegistryOptions options;
  options.max_models = max_models;
  options.reload_breaker_threshold = breaker_threshold;
  options.serving.queue.capacity = queue_capacity;
  options.serving.batch.max_batch_rows = 16;
  options.serving.batch.max_batch_delay = microseconds(100);
  options.serving.start_dispatcher = start_dispatcher;
  return options;
}

std::unique_ptr<ModelRegistry> MakeRegistry(
    ModelRegistryOptions options = SmallOptions()) {
  return ModelRegistry::Create(std::move(options)).MoveValue();
}

std::vector<float> Probe(uint64_t salt) {
  std::vector<float> x(kFeatures);
  Rng rng(salt);
  for (auto& v : x) v = static_cast<float>(rng.UniformRealRange(-2.0, 2.0));
  return x;
}

/// Reference answers computed through a private single-model registry, so
/// chaos results can be compared bit-for-bit against "what this image says".
std::vector<PredictResult> ReferenceAnswers(
    const std::shared_ptr<const predict::FlatEnsemble>& image,
    size_t num_probes) {
  auto registry = MakeRegistry();
  EXPECT_TRUE(registry->Load("ref", image).ok());
  std::vector<PredictResult> out;
  for (size_t i = 0; i < num_probes; ++i) {
    auto result = registry->Predict("ref", Probe(i));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.push_back(std::move(result).MoveValue());
  }
  return out;
}

bool SameResult(const PredictResult& a, const PredictResult& b) {
  return a.label == b.label && a.votes == b.votes;
}

/// The registry-wide exactly-once identity (see model_registry.h): every
/// SubmitPredict call is accounted to exactly one bucket, and every
/// admitted request was answered by the time the registry drained.
void ExpectAccountingCloses(const RegistryStats& stats) {
  EXPECT_EQ(stats.submitted,
            stats.serving.submitted + stats.refused_unknown_model +
                stats.refused_not_serving);
  EXPECT_EQ(stats.serving.submitted,
            stats.serving.admitted + stats.serving.rejected_full +
                stats.serving.rejected_shed + stats.serving.rejected_shutdown +
                stats.serving.rejected_invalid +
                stats.serving.expired_admission);
  EXPECT_EQ(stats.serving.admitted,
            stats.serving.completed_ok + stats.serving.expired_dispatch +
                stats.serving.expired_completion);
}

// ---------------------------------------------------------------------------
// Lifecycle + typed refusals

TEST(RegistryLifecycleTest, LoadServePredictUnload) {
  auto registry = MakeRegistry();
  auto image = MakeImage(1);
  ASSERT_TRUE(registry->Load("alpha", image).ok());

  auto info = registry->Info("alpha");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, ModelState::kServing);
  EXPECT_EQ(info.value().checksum, io::EnsembleChecksum(*image));
  EXPECT_FALSE(info.value().breaker_open);

  const auto reference = ReferenceAnswers(image, 4);
  for (size_t i = 0; i < reference.size(); ++i) {
    auto result = registry->Predict("alpha", Probe(i));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(SameResult(result.value(), reference[i]));
  }

  ASSERT_TRUE(registry->Unload("alpha").ok());
  EXPECT_EQ(registry->Info("alpha").status().code(), StatusCode::kNotFound);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.loads_ok, 1u);
  EXPECT_EQ(stats.unloads, 1u);
  EXPECT_EQ(stats.serving.completed_ok, 4u);
  ExpectAccountingCloses(stats);
}

TEST(RegistryLifecycleTest, TypedRefusalsForEveryWrongCall) {
  auto registry = MakeRegistry(SmallOptions(/*max_models=*/1));
  ASSERT_TRUE(registry->Load("only", MakeImage(2)).ok());

  EXPECT_EQ(registry->Load("only", MakeImage(3)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry->Load("overflow", MakeImage(3)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(registry->Unload("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry->Reload("ghost", MakeImage(3)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry->Load("", MakeImage(3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry->Load(std::string(300, 'x'), MakeImage(3)).code(),
            StatusCode::kInvalidArgument);

  auto unknown = registry->Predict("ghost", Probe(0));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.refused_unknown_model, 1u);
  ExpectAccountingCloses(stats);
}

TEST(RegistryLifecycleTest, RejectsBlockingAdmissionPolicy) {
  ModelRegistryOptions options = SmallOptions();
  options.serving.queue.policy = OverflowPolicy::kBlockWithDeadline;
  auto created = ModelRegistry::Create(std::move(options));
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryLifecycleTest, FailedLoadLeavesTypedFailedEntryAndRecovers) {
  auto registry = MakeRegistry();
  {
    ScopedFault fault("serve.registry.load.fail", {});
    const Status failed = registry->Load("broken", MakeImage(4));
    ASSERT_FALSE(failed.ok());
  }
  // The entry exists, FAILED, with the typed cause — never half-serving.
  auto info = registry->Info("broken");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, ModelState::kFailed);
  EXPECT_FALSE(info.value().last_error.ok());

  auto refused = registry->Predict("broken", Probe(0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  // The id is held until the operator unloads it.
  EXPECT_EQ(registry->Load("broken", MakeImage(4)).code(),
            StatusCode::kAlreadyExists);

  // Recovery: Unload the FAILED entry, then a clean Load serves.
  ASSERT_TRUE(registry->Unload("broken").ok());
  ASSERT_TRUE(registry->Load("broken", MakeImage(4)).ok());
  EXPECT_TRUE(registry->Predict("broken", Probe(0)).ok());
  // Drain before reading stats: the admitted == completed identity only
  // closes once the front-ends have retired their in-flight bookkeeping.
  registry->Shutdown();
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.load_failures, 1u);
  EXPECT_EQ(stats.loads_ok, 1u);
  ExpectAccountingCloses(stats);
}

// ---------------------------------------------------------------------------
// Snapshot cold start

TEST(RegistrySnapshotTest, ColdStartFromSnapshotServesIdentically) {
  auto image = MakeImage(5);
  const std::string path = ::testing::TempDir() + "/treewm_registry_cold.twsn";
  ASSERT_TRUE(io::SaveEnsembleSnapshot(*image, path).ok());

  auto registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadFromSnapshot("cold", path).ok());
  auto info = registry->Info("cold");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, ModelState::kServing);
  EXPECT_EQ(info.value().checksum, io::EnsembleChecksum(*image));

  const auto reference = ReferenceAnswers(image, 4);
  for (size_t i = 0; i < reference.size(); ++i) {
    auto result = registry->Predict("cold", Probe(i));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SameResult(result.value(), reference[i]));
  }
  std::remove(path.c_str());
}

TEST(RegistrySnapshotTest, CorruptSnapshotFailsLoadClosed) {
  auto image = MakeImage(6);
  const std::string path = ::testing::TempDir() + "/treewm_registry_bad.twsn";
  ASSERT_TRUE(io::SaveEnsembleSnapshot(*image, path).ok());

  auto registry = MakeRegistry();
  {
    ScopedFault fault("serve.registry.snapshot.corrupt", {});
    const Status failed = registry->LoadFromSnapshot("corrupt", path);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kParseError);
  }
  auto info = registry->Info("corrupt");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, ModelState::kFailed);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Atomic hot reload

TEST(RegistryReloadTest, ReloadUnderTrafficDropsAndRefusesNothing) {
  auto image_a = MakeImage(10);
  auto image_b = MakeImage(11, /*num_trees=*/9);  // distinguishable shape
  constexpr size_t kProbes = 8;
  const auto ref_a = ReferenceAnswers(image_a, kProbes);
  const auto ref_b = ReferenceAnswers(image_b, kProbes);

  auto registry = MakeRegistry();
  ASSERT_TRUE(registry->Load("m", image_a).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::atomic<bool> start{false};
  std::atomic<uint64_t> matched_a{0};
  std::atomic<uint64_t> matched_b{0};
  std::atomic<uint64_t> spurious_refusals{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> failed_reloads{0};
  ThreadPool pool(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(pool.Submit([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const size_t p =
            static_cast<size_t>(rng.UniformIntRange(0, kProbes - 1));
        auto result = registry->Predict("m", Probe(p));
        // The swap must never drop or spuriously refuse a request.
        if (!result.ok()) {
          spurious_refusals.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const bool is_a = SameResult(result.value(), ref_a[p]);
        const bool is_b = SameResult(result.value(), ref_b[p]);
        if (is_a == is_b) {  // matches neither image exactly (or both)
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        (is_a ? matched_a : matched_b).fetch_add(1, std::memory_order_relaxed);
      }
    }).ok());
  }
  ASSERT_TRUE(pool.Submit([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 30; ++i) {
      const Status swapped =
          registry->Reload("m", (i % 2 == 0) ? image_b : image_a);
      if (!swapped.ok()) failed_reloads.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }).ok());
  start.store(true, std::memory_order_release);
  pool.Shutdown();

  EXPECT_EQ(spurious_refusals.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(failed_reloads.load(), 0u);
  // Both images actually served (the swaps were observed by traffic).
  EXPECT_GT(matched_a.load(), 0u);
  EXPECT_GT(matched_b.load(), 0u);
  registry->Shutdown();
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.reloads_ok, 30u);
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Zero drops, zero refusals: every submit was admitted and completed.
  EXPECT_EQ(stats.refused_not_serving, 0u);
  EXPECT_EQ(stats.serving.completed_ok, stats.submitted);
  ExpectAccountingCloses(stats);
}

TEST(RegistryReloadTest, SwapStallBlocksNeitherTrafficNorOtherModels) {
  auto registry = MakeRegistry();
  auto image_a = MakeImage(12);
  ASSERT_TRUE(registry->Load("stalled", image_a).ok());
  ASSERT_TRUE(registry->Load("bystander", MakeImage(13)).ok());

  FaultSpec stall;
  stall.stall = milliseconds(500);
  stall.max_fires = 1;
  ScopedFault fault("serve.registry.swap.stall", stall);

  auto image_c = MakeImage(14);  // built up front: the lambda reloads at once
  ThreadPool pool(1);
  std::atomic<bool> reload_returned{false};
  ASSERT_TRUE(pool.Submit([&] {
    const Status swapped = registry->Reload("stalled", image_c);
    EXPECT_TRUE(swapped.ok()) << swapped.ToString();
    reload_returned.store(true, std::memory_order_release);
  }).ok());
  // Wait for the reload thread to hit the stall site: once the hit is
  // registered it is parked inside a 500ms stall with the reload claimed.
  while (FaultInjection::HitCount("serve.registry.swap.stall") == 0) {
    std::this_thread::yield();
  }
  ASSERT_FALSE(reload_returned.load(std::memory_order_acquire));

  // While the swap is stalled: the old image keeps answering, the other
  // model is untouched, and a second reload of the same model is refused
  // typed instead of queueing behind the stall.
  EXPECT_TRUE(registry->Predict("stalled", Probe(0)).ok());
  EXPECT_TRUE(registry->Predict("bystander", Probe(0)).ok());
  EXPECT_EQ(registry->Reload("stalled", image_a).code(),
            StatusCode::kFailedPrecondition);
  // Unload during an in-flight reload is refused, not deadlocked.
  EXPECT_EQ(registry->Unload("stalled").code(),
            StatusCode::kFailedPrecondition);

  pool.Shutdown();
  ASSERT_TRUE(reload_returned.load(std::memory_order_acquire));
  // With the reload finished, both verbs work again.
  ASSERT_TRUE(registry->Reload("stalled", image_a).ok());
  ASSERT_TRUE(registry->Unload("stalled").ok());
  ExpectAccountingCloses(registry->stats());
}

TEST(RegistryReloadTest, CircuitBreakerOpensAfterConsecutiveFailures) {
  auto registry = MakeRegistry(SmallOptions(/*max_models=*/8,
                                            /*breaker_threshold=*/2));
  auto image = MakeImage(15);
  ASSERT_TRUE(registry->Load("flappy", image).ok());
  const auto reference = ReferenceAnswers(image, 2);

  {
    ScopedFault fault("serve.registry.load.fail", {});
    EXPECT_FALSE(registry->Reload("flappy", MakeImage(16)).ok());
    EXPECT_FALSE(registry->Reload("flappy", MakeImage(16)).ok());
  }
  // Threshold reached: the breaker refuses further reloads even though the
  // fault is gone — a crash-looping model file stops being retried.
  const Status refused = registry->Reload("flappy", MakeImage(16));
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  auto info = registry->Info("flappy");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().breaker_open);
  EXPECT_EQ(info.value().reload_failures, 2u);
  EXPECT_EQ(info.value().state, ModelState::kServing);

  // The OLD image never stopped serving, bit-for-bit.
  for (size_t i = 0; i < reference.size(); ++i) {
    auto result = registry->Predict("flappy", Probe(i));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SameResult(result.value(), reference[i]));
  }

  // Unload + Load is the reset path.
  ASSERT_TRUE(registry->Unload("flappy").ok());
  ASSERT_TRUE(registry->Load("flappy", image).ok());
  auto reset = registry->Info("flappy");
  ASSERT_TRUE(reset.ok());
  EXPECT_FALSE(reset.value().breaker_open);
  ASSERT_TRUE(registry->Reload("flappy", MakeImage(16)).ok());
  const RegistryStats stats = registry->stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.reload_failures, 2u);
  ExpectAccountingCloses(stats);
}

TEST(RegistryReloadTest, SuccessResetsTheConsecutiveFailureCount) {
  auto registry = MakeRegistry(SmallOptions(/*max_models=*/8,
                                            /*breaker_threshold=*/2));
  ASSERT_TRUE(registry->Load("m", MakeImage(17)).ok());
  {
    ScopedFault fault("serve.registry.load.fail", {});
    EXPECT_FALSE(registry->Reload("m", MakeImage(18)).ok());
  }
  ASSERT_TRUE(registry->Reload("m", MakeImage(18)).ok());  // resets the streak
  {
    ScopedFault fault("serve.registry.load.fail", {});
    EXPECT_FALSE(registry->Reload("m", MakeImage(18)).ok());
  }
  // One failure per streak, threshold two: the breaker never opened.
  auto info = registry->Info("m");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().breaker_open);
  EXPECT_TRUE(registry->Reload("m", MakeImage(17)).ok());
}

// ---------------------------------------------------------------------------
// Bulkhead isolation

TEST(RegistryBulkheadTest, HotModelOverloadShedsOnlyItsOwnTraffic) {
  // Manual mode + tiny queue: the hot model's flood deterministically
  // overflows its own bulkhead while the cold model's stays empty.
  auto registry = MakeRegistry(SmallOptions(/*max_models=*/4,
                                            /*breaker_threshold=*/3,
                                            /*start_dispatcher=*/false,
                                            /*queue_capacity=*/4));
  ASSERT_TRUE(registry->Load("hot", MakeImage(20)).ok());
  ASSERT_TRUE(registry->Load("cold", MakeImage(21)).ok());

  std::vector<std::future<Result<PredictResult>>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(registry->SubmitPredict("hot", Probe(0)));
  }
  auto cold_future = registry->SubmitPredict("cold", Probe(0));

  // The overflow was refused immediately and typed; nothing blocked.
  size_t hot_refused = 0;
  auto hot_info = registry->Info("hot");
  ASSERT_TRUE(hot_info.ok());
  EXPECT_EQ(hot_info.value().serving.rejected_full, 8u);

  // The cold model's bulkhead never saw the flood.
  auto cold_info = registry->Info("cold");
  ASSERT_TRUE(cold_info.ok());
  EXPECT_EQ(cold_info.value().serving.rejected_full, 0u);
  EXPECT_EQ(cold_info.value().serving.submitted, 1u);

  // Pump both models until dry; admitted work completes, the cold answer
  // arrives.
  for (const char* id : {"hot", "cold"}) {
    while (true) {
      auto answered = registry->Pump(id, /*force_flush=*/true);
      ASSERT_TRUE(answered.ok()) << answered.status().ToString();
      if (answered.value() == 0) break;
    }
  }
  auto cold_result = cold_future.get();
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++hot_refused;
    }
  }
  EXPECT_EQ(hot_refused, 8u);
  registry->Shutdown();
  ExpectAccountingCloses(registry->stats());
}

// ---------------------------------------------------------------------------
// Chaos matrix: concurrent reloads × unload/load churn × mixed-model
// traffic × fault schedules

struct ChaosSchedule {
  const char* name;
  const char* site;  // nullptr = no fault armed
  double probability;
  std::chrono::nanoseconds stall{0};
};

TEST(RegistryChaosMatrixTest, AccountingClosesAndResultsMatchAnImage) {
  const ChaosSchedule schedules[] = {
      {"no-faults", nullptr, 0.0, {}},
      {"load-fail-half", "serve.registry.load.fail", 0.5, {}},
      {"swap-stall", "serve.registry.swap.stall", 0.3, microseconds(500)},
      {"snapshot-corrupt", "serve.registry.snapshot.corrupt", 0.5, {}},
  };
  constexpr size_t kModels = 3;
  constexpr size_t kProbes = 6;
  constexpr int kTrafficThreads = 4;
  constexpr int kPerThread = 120;

  // Two candidate images per model, plus a snapshot file of image A for
  // the ReloadFromSnapshot churn.
  std::vector<std::shared_ptr<const predict::FlatEnsemble>> image_a;
  std::vector<std::shared_ptr<const predict::FlatEnsemble>> image_b;
  std::vector<std::vector<PredictResult>> ref_a;
  std::vector<std::vector<PredictResult>> ref_b;
  std::vector<std::string> snapshot_paths;
  for (size_t m = 0; m < kModels; ++m) {
    image_a.push_back(MakeImage(100 + m));
    image_b.push_back(MakeImage(200 + m, /*num_trees=*/9));
    ref_a.push_back(ReferenceAnswers(image_a[m], kProbes));
    ref_b.push_back(ReferenceAnswers(image_b[m], kProbes));
    const std::string path = ::testing::TempDir() + "/treewm_chaos_" +
                             std::to_string(m) + ".twsn";
    EXPECT_TRUE(io::SaveEnsembleSnapshot(*image_a[m], path).ok());
    snapshot_paths.push_back(path);
  }
  const auto model_name = [](size_t m) { return "model-" + std::to_string(m); };

  for (const ChaosSchedule& schedule : schedules) {
    SCOPED_TRACE(schedule.name);
    auto registry = MakeRegistry(SmallOptions(/*max_models=*/kModels + 1));
    for (size_t m = 0; m < kModels; ++m) {
      ASSERT_TRUE(registry->Load(model_name(m), image_a[m]).ok());
    }

    std::optional<ScopedFault> fault;
    if (schedule.site != nullptr) {
      FaultSpec spec;
      spec.probability = schedule.probability;
      spec.stall = schedule.stall;
      fault.emplace(schedule.site, spec);
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> refused{0};
    ThreadPool pool(kTrafficThreads + 2);

    for (int t = 0; t < kTrafficThreads; ++t) {
      ASSERT_TRUE(pool.Submit([&, t] {
        Rng rng(7000 + t);
        for (int i = 0; i < kPerThread; ++i) {
          // Upper bound inclusive: m == kModels plays the unknown-model id.
          const size_t m =
              static_cast<size_t>(rng.UniformIntRange(0, kModels));
          const size_t p =
              static_cast<size_t>(rng.UniformIntRange(0, kProbes - 1));
          auto result =
              registry->Predict(m == kModels ? "no-such-model" : model_name(m),
                                Probe(p));
          if (!result.ok()) {
            // Typed refusals only: unknown model, a FAILED/DRAINING window,
            // or bulkhead pushback — never a hung or dropped future.
            refused.fetch_add(1, std::memory_order_relaxed);
            const StatusCode code = result.status().code();
            if (code != StatusCode::kNotFound &&
                code != StatusCode::kFailedPrecondition &&
                code != StatusCode::kResourceExhausted) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          completed.fetch_add(1, std::memory_order_relaxed);
          if (m < kModels &&
              !SameResult(result.value(), ref_a[m][p]) &&
              !SameResult(result.value(), ref_b[m][p])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }).ok());
    }
    // Churn thread 1: hot reloads alternating images + snapshot reloads.
    ASSERT_TRUE(pool.Submit([&] {
      Rng rng(31);
      int round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const size_t m =
            static_cast<size_t>(rng.UniformIntRange(0, kModels - 1));
        Status outcome;
        if (round++ % 3 == 2) {
          outcome = registry->ReloadFromSnapshot(model_name(m),
                                                 snapshot_paths[m]);
        } else {
          outcome = registry->Reload(
              model_name(m), (round % 2 == 0) ? image_a[m] : image_b[m]);
        }
        // Failures are expected under the fault schedules (the breaker may
        // open); what traffic observes is asserted after the joins.
        (void)outcome;  // discard ok: chaos churn, invariants checked later
        std::this_thread::yield();
      }
    }).ok());
    // Churn thread 2: unload/load cycles on the last model.
    ASSERT_TRUE(pool.Submit([&] {
      const std::string victim = model_name(kModels - 1);
      while (!stop.load(std::memory_order_acquire)) {
        if (registry->Unload(victim).ok()) {
          // discard ok: reload churn may race the slot; traffic tolerates
          // a NotFound window either way
          (void)registry->Load(victim, image_a[kModels - 1]);
        }
        std::this_thread::yield();
      }
    }).ok());

    // pool.Shutdown() drains: traffic tasks finish, then we stop the churn.
    // (Submit order doesn't guarantee scheduling; the stop flag does.)
    ThreadPool waiter(1);
    ASSERT_TRUE(waiter.Submit([&] {
      while (completed.load(std::memory_order_acquire) +
                 refused.load(std::memory_order_acquire) <
             static_cast<uint64_t>(kTrafficThreads) * kPerThread) {
        std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
    }).ok());
    waiter.Shutdown();
    pool.Shutdown();
    fault.reset();
    registry->Shutdown();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(completed.load() + refused.load(),
              static_cast<uint64_t>(kTrafficThreads) * kPerThread);
    const RegistryStats stats = registry->stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kTrafficThreads) * kPerThread);
    ExpectAccountingCloses(stats);
  }
  for (const std::string& path : snapshot_paths) std::remove(path.c_str());
}

}  // namespace
}  // namespace treewm::serve
