// Unit, property and fuzz tests for the CDCL SAT solver.

#include "sat/solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sat/dimacs.h"

namespace treewm::sat {
namespace {

Lit Pos(Var v) { return Lit::Make(v, false); }
Lit Neg(Var v) { return Lit::Make(v, true); }

TEST(LitTest, EncodingRoundTrips) {
  Lit l = Lit::Make(5, true);
  EXPECT_EQ(l.var(), 5);
  EXPECT_TRUE(l.negated());
  EXPECT_EQ(l.Negated().var(), 5);
  EXPECT_FALSE(l.Negated().negated());
  EXPECT_EQ(l.Negated().Negated(), l);
  EXPECT_EQ(l.ToString(), "~x5");
  EXPECT_EQ(Pos(3).ToString(), "x3");
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SatResult::kSat);
}

TEST(SolverTest, SingleUnitClause) {
  Solver s;
  Var x = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x)}));
  EXPECT_EQ(s.Solve(), SatResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
}

TEST(SolverTest, ConflictingUnitsAreUnsat) {
  Solver s;
  Var x = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x)}));
  EXPECT_FALSE(s.AddClause({Neg(x)}));
  EXPECT_TRUE(s.proven_unsat());
  EXPECT_EQ(s.Solve(), SatResult::kUnsat);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Solver s;
  EXPECT_FALSE(s.AddClause({}));
  EXPECT_EQ(s.Solve(), SatResult::kUnsat);
}

TEST(SolverTest, TautologyIsDropped) {
  Solver s;
  Var x = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x), Neg(x)}));
  EXPECT_EQ(s.Solve(), SatResult::kSat);
}

TEST(SolverTest, DuplicateLiteralsAreMerged) {
  Solver s;
  Var x = s.NewVar();
  Var y = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x), Pos(x), Neg(y)}));
  EXPECT_EQ(s.Solve(), SatResult::kSat);
}

TEST(SolverTest, ImplicationChainPropagates) {
  Solver s;
  s.EnsureVars(10);
  // x0 and chain x_i -> x_{i+1} forces all true.
  EXPECT_TRUE(s.AddClause({Pos(0)}));
  for (Var v = 0; v + 1 < 10; ++v) {
    EXPECT_TRUE(s.AddClause({Neg(v), Pos(v + 1)}));
  }
  ASSERT_EQ(s.Solve(), SatResult::kSat);
  for (Var v = 0; v < 10; ++v) EXPECT_TRUE(s.ModelValue(v));
}

TEST(SolverTest, SimpleUnsatCore) {
  // (x | y) & (x | ~y) & (~x | y) & (~x | ~y) is UNSAT.
  Solver s;
  Var x = s.NewVar();
  Var y = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x), Pos(y)}));
  EXPECT_TRUE(s.AddClause({Pos(x), Neg(y)}));
  EXPECT_TRUE(s.AddClause({Neg(x), Pos(y)}));
  EXPECT_TRUE(s.AddClause({Neg(x), Neg(y)}));
  EXPECT_EQ(s.Solve(), SatResult::kUnsat);
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes — UNSAT and
/// requires real clause learning to finish quickly.
void AddPigeonhole(Solver* s, int pigeons, int holes) {
  // var(p, h) = p*holes + h.
  s->EnsureVars(pigeons * holes);
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < holes; ++h) some_hole.push_back(Pos(p * holes + h));
    ASSERT_TRUE(s->AddClause(some_hole));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s->AddClause({Neg(p1 * holes + h), Neg(p2 * holes + h)}));
      }
    }
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int n : {3, 4, 5, 6}) {
    Solver s;
    AddPigeonhole(&s, n + 1, n);
    EXPECT_EQ(s.Solve(), SatResult::kUnsat) << "PHP(" << n + 1 << "," << n << ")";
  }
}

TEST(SolverTest, PigeonholeSatWhenEnoughHoles) {
  Solver s;
  AddPigeonhole(&s, 4, 4);
  EXPECT_EQ(s.Solve(), SatResult::kSat);
  EXPECT_TRUE(s.ModelSatisfiesFormula(s.Model()));
}

TEST(SolverTest, BudgetReturnsUnknown) {
  Solver s;
  AddPigeonhole(&s, 9, 8);  // hard enough to exceed a one-conflict budget
  SolveBudget budget;
  budget.max_conflicts = 1;
  EXPECT_EQ(s.Solve(budget), SatResult::kUnknown);
  // And solvable once the budget is lifted.
  EXPECT_EQ(s.Solve(), SatResult::kUnsat);
}

TEST(SolverTest, StatsArePopulated) {
  Solver s;
  AddPigeonhole(&s, 6, 5);
  EXPECT_EQ(s.Solve(), SatResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

TEST(SolverTest, SolveIsRepeatable) {
  Solver s;
  Var x = s.NewVar();
  Var y = s.NewVar();
  EXPECT_TRUE(s.AddClause({Pos(x), Pos(y)}));
  EXPECT_EQ(s.Solve(), SatResult::kSat);
  EXPECT_EQ(s.Solve(), SatResult::kSat);
  EXPECT_TRUE(s.ModelSatisfiesFormula(s.Model()));
}

/// Exhaustive reference check for small formulas.
bool BruteForceSat(const CnfFormula& f) {
  for (uint64_t mask = 0; mask < (1ULL << f.num_vars); ++mask) {
    bool all = true;
    for (const auto& clause : f.clauses) {
      bool sat = false;
      for (const Lit& l : clause) {
        const bool value = (mask >> l.var()) & 1;
        if (value != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

/// Fuzz sweep across clause densities: CDCL must agree with brute force and
/// return verifiable models.
class RandomCnfSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfSweep, AgreesWithBruteForce) {
  const int num_clauses = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(num_clauses));
  for (int iter = 0; iter < 300; ++iter) {
    CnfFormula f;
    f.num_vars = 3 + static_cast<int>(rng.UniformInt(9));
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng.UniformInt(3));
      for (int j = 0; j < len; ++j) {
        clause.push_back(Lit::Make(static_cast<Var>(rng.UniformInt(
                                       static_cast<uint64_t>(f.num_vars))),
                                   rng.Bernoulli(0.5)));
      }
      f.clauses.push_back(std::move(clause));
    }
    Solver s;
    const bool loaded = LoadIntoSolver(f, &s);
    const bool got = loaded && s.Solve() == SatResult::kSat;
    EXPECT_EQ(got, BruteForceSat(f)) << "iteration " << iter;
    if (got) EXPECT_TRUE(s.ModelSatisfiesFormula(s.Model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RandomCnfSweep,
                         ::testing::Values(5, 15, 30, 50, 80));

}  // namespace
}  // namespace treewm::sat
