// Tests for the suppression indistinguishability probe.

#include "attacks/suppression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::attacks {
namespace {

TEST(SuppressionProbeTest, SameDistributionLooksIndistinguishable) {
  // Trigger = random subsample of the same pool as the decoys (the paper's
  // construction): nearest-neighbour affinity should be near the null rate.
  auto pool = data::synthetic::MakeBlobs(1, 600, 8, 1.0);
  Rng rng(2);
  auto trigger_idx = data::SampleTriggerIndices(pool, 30, &rng).MoveValue();
  std::vector<uint8_t> is_trigger(pool.num_rows(), 0);
  for (size_t idx : trigger_idx) is_trigger[idx] = 1;
  std::vector<size_t> decoy_idx;
  for (size_t i = 0; i < pool.num_rows(); ++i) {
    if (!is_trigger[i]) decoy_idx.push_back(i);
  }
  auto report = ProbeSuppression(pool.Subset(trigger_idx), pool.Subset(decoy_idx))
                    .MoveValue();
  EXPECT_EQ(report.trigger_size, 30u);
  // Affinity within ~6x of the (tiny) null expectation — i.e. no usable
  // clustering signal for the attacker.
  EXPECT_LT(report.trigger_nn_fraction, 0.3);
  EXPECT_LT(report.separation_ratio, 6.0);
}

TEST(SuppressionProbeTest, ShiftedTriggersAreDetectable) {
  // Counterfactual: a trigger set far from the data distribution (what a
  // naive out-of-distribution trigger design would produce) clusters hard.
  auto decoys = data::synthetic::MakeBlobs(3, 300, 4, 1.0);
  data::Dataset trigger(4);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    std::vector<float> row(4);
    for (float& v : row) v = 0.98f + 0.02f * static_cast<float>(rng.UniformReal());
    ASSERT_TRUE(trigger.AddRow(row, data::kPositive).ok());
  }
  auto report = ProbeSuppression(trigger, decoys).MoveValue();
  EXPECT_GT(report.trigger_nn_fraction, 0.9);
  EXPECT_GT(report.separation_ratio, 5.0);
}

TEST(SuppressionProbeTest, ExpectedFractionIsPoolShare) {
  auto pool = data::synthetic::MakeBlobs(5, 101, 3, 1.0);
  std::vector<size_t> first(pool.num_rows());
  for (size_t i = 0; i < pool.num_rows(); ++i) first[i] = i;
  auto trigger = pool.Subset({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  auto decoys = pool.Subset(std::vector<size_t>(first.begin() + 11, first.end()));
  auto report = ProbeSuppression(trigger, decoys).MoveValue();
  EXPECT_NEAR(report.expected_fraction, 10.0 / 100.0, 1e-9);
}

TEST(SuppressionProbeTest, ValidatesInputs) {
  data::Dataset empty(3);
  auto decoys = data::synthetic::MakeBlobs(6, 50, 3, 1.0);
  EXPECT_FALSE(ProbeSuppression(empty, decoys).ok());
  EXPECT_FALSE(ProbeSuppression(decoys, empty).ok());
  data::Dataset wrong(5);
  Rng rng(7);
  std::vector<float> row(5, 0.5f);
  ASSERT_TRUE(wrong.AddRow(row, data::kPositive).ok());
  EXPECT_FALSE(ProbeSuppression(wrong, decoys).ok());
}

TEST(SuppressionProbeTest, RealWatermarkTriggerPassesProbe) {
  // End-to-end: the trigger set produced by Algorithm 1 is a subsample of
  // the training data, so the probe must find it indistinguishable.
  auto data = data::synthetic::MakeBlobs(8, 500, 6, 1.5);
  Rng rng(9);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  // Trigger sampled from train; decoys are the test set (same distribution).
  auto trigger_idx = data::SampleTriggerIndices(tt.train, 15, &rng).MoveValue();
  auto report =
      ProbeSuppression(tt.train.Subset(trigger_idx), tt.test).MoveValue();
  EXPECT_LT(report.trigger_nn_fraction, 0.35);
}

}  // namespace
}  // namespace treewm::attacks
