// Tests for the process-wide fault-injection registry: arming semantics,
// sequence/probability triggering, determinism, and the disarmed fast path.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/thread_pool.h"

namespace treewm {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedSitesNeverFire) {
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_FALSE(TREEWM_FAULT_FIRED("nowhere.at.all"));
  EXPECT_EQ(FaultInjection::HitCount("nowhere.at.all"), 0u);
}

TEST_F(FaultInjectionTest, ArmedSiteFiresEveryHitByDefault) {
  ScopedFault fault("site.a", FaultSpec{});
  EXPECT_TRUE(FaultInjection::Enabled());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(TREEWM_FAULT_FIRED("site.a"));
  EXPECT_EQ(fault.hits(), 5u);
  EXPECT_EQ(fault.fires(), 5u);
}

TEST_F(FaultInjectionTest, ArmingOneSiteDoesNotAffectOthers) {
  ScopedFault fault("site.a", FaultSpec{});
  EXPECT_FALSE(TREEWM_FAULT_FIRED("site.b"));
  EXPECT_TRUE(TREEWM_FAULT_FIRED("site.a"));
}

TEST_F(FaultInjectionTest, SequenceTriggering) {
  // "Fire on the 3rd and 4th hit only" = skip_first 2, max_fires 2.
  FaultSpec spec;
  spec.skip_first = 2;
  spec.max_fires = 2;
  ScopedFault fault("site.seq", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(TREEWM_FAULT_FIRED("site.seq"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(fault.hits(), 6u);
  EXPECT_EQ(fault.fires(), 2u);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicPerSeed) {
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  auto run = [&spec] {
    FaultInjection::Arm("site.p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(TREEWM_FAULT_FIRED("site.p"));
    FaultInjection::Disarm("site.p");
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);  // re-arming resets the seeded stream
  // A fair-ish split, not all-or-nothing.
  size_t fires = 0;
  for (bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 8u);
  EXPECT_LT(fires, 56u);
}

TEST_F(FaultInjectionTest, ZeroProbabilityNeverFires) {
  FaultSpec spec;
  spec.probability = 0.0;
  ScopedFault fault("site.never", spec);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(TREEWM_FAULT_FIRED("site.never"));
  EXPECT_EQ(fault.hits(), 32u);
  EXPECT_EQ(fault.fires(), 0u);
}

TEST_F(FaultInjectionTest, RearmingResetsCounters) {
  FaultInjection::Arm("site.r", FaultSpec{});
  EXPECT_TRUE(TREEWM_FAULT_FIRED("site.r"));
  EXPECT_EQ(FaultInjection::HitCount("site.r"), 1u);
  FaultInjection::Arm("site.r", FaultSpec{});
  EXPECT_EQ(FaultInjection::HitCount("site.r"), 0u);
  EXPECT_EQ(FaultInjection::FireCount("site.r"), 0u);
  FaultInjection::Disarm("site.r");
}

TEST_F(FaultInjectionTest, ResetDisarmsEverything) {
  FaultInjection::Arm("site.x", FaultSpec{});
  FaultInjection::Arm("site.y", FaultSpec{});
  FaultInjection::Reset();
  EXPECT_FALSE(FaultInjection::Enabled());
  EXPECT_FALSE(TREEWM_FAULT_FIRED("site.x"));
  EXPECT_FALSE(TREEWM_FAULT_FIRED("site.y"));
}

TEST_F(FaultInjectionTest, StallDelaysTheHittingThread) {
  FaultSpec spec;
  spec.stall = std::chrono::milliseconds(20);
  spec.max_fires = 1;
  ScopedFault fault("site.stall", spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(TREEWM_FAULT_FIRED("site.stall"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  // Second hit is past max_fires: no fire, no stall.
  EXPECT_FALSE(TREEWM_FAULT_FIRED("site.stall"));
}

TEST_F(FaultInjectionTest, ConcurrentHitsAreCountedExactly) {
  FaultSpec spec;
  spec.probability = 0.0;  // count hits without firing
  ScopedFault fault("site.mt", spec);
  ThreadPool hammer(4);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(hammer
                    .Submit([] {
                      // discard ok: probability 0.0 — only the hit count matters
                      for (int i = 0; i < 250; ++i) (void)TREEWM_FAULT_FIRED("site.mt");
                    })
                    .ok());
  }
  hammer.Wait();
  EXPECT_EQ(fault.hits(), 1000u);
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault("site.scope", FaultSpec{});
    EXPECT_TRUE(TREEWM_FAULT_FIRED("site.scope"));
  }
  EXPECT_FALSE(TREEWM_FAULT_FIRED("site.scope"));
  EXPECT_FALSE(FaultInjection::Enabled());
}

}  // namespace
}  // namespace treewm
