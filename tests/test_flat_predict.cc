// Property tests for the batched flat-ensemble inference engine: on every
// covered configuration, FlatEnsemble/BatchPredictor output must be
// bit-exact with the scalar reference loops (predict/reference.h), for every
// thread count and tiling shape.

#include "predict/batch_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "predict/reference.h"
#include "tree/decision_tree.h"

namespace treewm::predict {
namespace {

forest::RandomForest MakeForest(uint64_t seed, size_t num_trees, size_t rows,
                                size_t features, int max_depth = -1) {
  auto d = data::synthetic::MakeBlobs(seed, rows, features, 1.0);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  config.tree.max_depth = max_depth;
  return forest::RandomForest::Fit(d, {}, config).MoveValue();
}

TEST(FloatKeyTest, PreservesFloatOrdering) {
  // FloatKey must be a monotone embedding of the non-NaN floats into uint32,
  // with -0.0 == +0.0 — this is what makes integer-key traversal bit-exact.
  const float values[] = {-std::numeric_limits<float>::infinity(), -3.5e12f,
                          -7.25f, -1.0f, -1e-30f, -0.0f, 0.0f, 1e-30f, 0.125f,
                          0.5f, 0.500001f, 1.0f, 77.0f, 3.5e12f,
                          std::numeric_limits<float>::infinity()};
  for (float a : values) {
    for (float b : values) {
      EXPECT_EQ(a <= b, FloatKey(a) <= FloatKey(b)) << a << " vs " << b;
    }
  }
  EXPECT_EQ(FloatKey(-0.0f), FloatKey(0.0f));
}

TEST(FloatKeyTest, EveryNanNormalizesAboveInfinity) {
  // All NaN payloads — sign bit set or not, quiet or signaling — must map to
  // ONE key above +inf, so both kernels route NaN features right exactly
  // like the scalar `!(x <= v)` rule (sign-bit NaNs previously mapped low).
  const uint32_t nan_bits[] = {0x7FC00000u, 0x7F800001u, 0x7FFFFFFFu,
                               0xFFC00000u, 0xFF800001u, 0xFFFFFFFFu};
  const uint32_t canonical = FloatKey(std::numeric_limits<float>::quiet_NaN());
  EXPECT_GT(canonical, FloatKey(std::numeric_limits<float>::infinity()));
  for (uint32_t bits : nan_bits) {
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    ASSERT_TRUE(std::isnan(f));
    EXPECT_EQ(FloatKey(f), canonical) << std::hex << bits;
  }
}

TEST(FlatEnsembleTest, PacksForestStructure) {
  auto forest = MakeForest(1, 5, 200, 6);
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  EXPECT_EQ(flat.num_trees(), 5u);
  EXPECT_EQ(flat.num_features(), 6u);
  EXPECT_FALSE(flat.is_regression());
  size_t nodes = 0, leaves = 0;
  for (const auto& t : forest.trees()) {
    nodes += t.NumNodes();
    leaves += t.NumLeaves();
  }
  EXPECT_EQ(flat.num_leaves(), leaves);
  EXPECT_EQ(flat.num_internal_nodes(), nodes - leaves);
}

// The core property: flat == scalar for randomized forests across shapes.
TEST(FlatEquivalenceTest, ForestBatchesMatchScalarAcrossRandomConfigs) {
  struct Case {
    uint64_t seed;
    size_t trees, rows, features;
    int max_depth;
  };
  const Case cases[] = {
      {11, 1, 50, 3, -1},  {12, 3, 97, 5, 4},    {13, 16, 256, 8, -1},
      {14, 7, 64, 12, 2},  {15, 33, 301, 4, -1}, {16, 2, 1, 6, -1},
  };
  for (const Case& c : cases) {
    auto forest = MakeForest(c.seed, c.trees, c.rows, c.features, c.max_depth);
    auto probe = data::synthetic::MakeBlobs(c.seed + 100, c.rows, c.features, 0.7);
    EXPECT_EQ(forest.PredictBatch(probe), reference::PredictBatch(forest, probe))
        << "seed " << c.seed;
    EXPECT_EQ(forest.PredictAllBatch(probe), reference::PredictAllBatch(forest, probe))
        << "seed " << c.seed;
    EXPECT_DOUBLE_EQ(forest.Accuracy(probe), reference::Accuracy(forest, probe))
        << "seed " << c.seed;
  }
}

TEST(FlatEquivalenceTest, SingleTreeBatchesMatchScalar) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto d = data::synthetic::MakeBlobs(seed, 150, 5, 1.0);
    tree::TreeConfig config;
    auto tree = tree::DecisionTree::Fit(d, {}, config).MoveValue();
    auto probe = data::synthetic::MakeBlobs(seed + 50, 77, 5, 0.9);
    EXPECT_EQ(tree.PredictBatch(probe), reference::PredictBatch(tree, probe));
    EXPECT_DOUBLE_EQ(tree.Accuracy(probe), reference::Accuracy(tree, probe));
  }
}

TEST(FlatEquivalenceTest, ThreadCountsAndTilingsNeverChangeResults) {
  auto forest = MakeForest(31, 9, 230, 7);
  auto probe = data::synthetic::MakeBlobs(32, 230, 7, 0.8);
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto expected_votes = reference::PredictAllBatch(forest, probe);
  const auto expected_labels = reference::PredictBatch(forest, probe);
  const double expected_acc = reference::Accuracy(forest, probe);
  for (size_t threads : {1u, 2u, 5u}) {
    for (size_t row_block : {1u, 3u, 64u, 1000u}) {
      for (size_t tree_block : {1u, 4u, 100u}) {
        BatchOptions options;
        options.num_threads = threads;
        options.row_block = row_block;
        options.tree_block = tree_block;
        BatchPredictor predictor(flat, options);
        EXPECT_EQ(predictor.PredictAllLabels(probe), expected_votes)
            << threads << "/" << row_block << "/" << tree_block;
        EXPECT_EQ(predictor.PredictLabels(probe), expected_labels);
        EXPECT_DOUBLE_EQ(predictor.LabelAccuracy(probe), expected_acc);
      }
    }
  }
}

// The VoteMatrix must agree entry-for-entry with the nested adapter (and
// hence the scalar reference) on every thread count and tiling, and the
// adapter itself must be a pure reshape of the matrix.
TEST(VoteMatrixTest, MatrixMatchesNestedAdapterAcrossThreadsAndTilings) {
  auto forest = MakeForest(33, 11, 217, 6);
  auto probe = data::synthetic::MakeBlobs(34, 217, 6, 0.8);
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto expected = reference::PredictAllBatch(forest, probe);
  VoteMatrix first;
  bool have_first = false;
  for (size_t threads : {1u, 2u, 5u}) {
    for (size_t row_block : {1u, 7u, 64u, 1000u}) {
      for (size_t tree_block : {1u, 3u, 100u}) {
        BatchOptions options;
        options.num_threads = threads;
        options.row_block = row_block;
        options.tree_block = tree_block;
        BatchPredictor predictor(flat, options);
        const VoteMatrix votes = predictor.PredictAllVotes(probe);
        ASSERT_EQ(votes.num_rows(), probe.num_rows());
        ASSERT_EQ(votes.num_trees(), forest.num_trees());
        EXPECT_EQ(votes.ToNested(), expected)
            << threads << "/" << row_block << "/" << tree_block;
        for (size_t r = 0; r < votes.num_rows(); ++r) {
          for (size_t t = 0; t < votes.num_trees(); ++t) {
            ASSERT_EQ(static_cast<int>(votes.vote(r, t)), expected[r][t])
                << "row " << r << " tree " << t;
          }
        }
        // Schedule independence: every configuration yields the same matrix.
        if (!have_first) {
          first = votes;
          have_first = true;
        } else {
          EXPECT_TRUE(votes == first);
        }
      }
    }
  }
}

TEST(VoteMatrixTest, MajorityLabelMatchesForestTieRule) {
  auto forest = MakeForest(36, 8, 150, 5);  // even tree count: ties possible
  auto probe = data::synthetic::MakeBlobs(37, 90, 5, 0.7);
  const VoteMatrix votes = forest.PredictAllVotes(probe);
  const auto labels = reference::PredictBatch(forest, probe);
  for (size_t r = 0; r < probe.num_rows(); ++r) {
    EXPECT_EQ(votes.MajorityLabel(r), labels[r]) << "row " << r;
  }
}

TEST(VoteMatrixTest, EmptyAndSingleRowShapes) {
  auto forest = MakeForest(38, 4, 80, 3);
  data::Dataset empty(3);
  const VoteMatrix none = forest.PredictAllVotes(empty);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.num_rows(), 0u);
  EXPECT_EQ(none.num_trees(), 4u);
  EXPECT_TRUE(none.ToNested().empty());

  data::Dataset one(3);
  ASSERT_TRUE(one.AddRow(std::vector<float>{0.1f, 0.9f, 0.4f}, +1).ok());
  const VoteMatrix single = forest.PredictAllVotes(one);
  ASSERT_EQ(single.num_rows(), 1u);
  EXPECT_EQ(single.ToNested(), reference::PredictAllBatch(forest, one));
}

TEST(FlatEquivalenceTest, SingleLeafTreesAndMixedDepths) {
  // Forest mixing root-only leaves with a real tree: exercises negative root
  // entries and idle lanes in the 4-way walk.
  auto plus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, +1}}, 4)
                  .MoveValue();
  auto minus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, -1}}, 4)
                   .MoveValue();
  auto d = data::synthetic::MakeBlobs(41, 120, 4, 1.5);
  tree::TreeConfig config;
  auto deep = tree::DecisionTree::Fit(d, {}, config).MoveValue();
  auto forest = forest::RandomForest::FromTrees({plus, minus, deep, plus, minus})
                    .MoveValue();
  EXPECT_EQ(forest.PredictBatch(d), reference::PredictBatch(forest, d));
  EXPECT_EQ(forest.PredictAllBatch(d), reference::PredictAllBatch(forest, d));
  EXPECT_DOUBLE_EQ(forest.Accuracy(d), reference::Accuracy(forest, d));

  // All-leaf ensemble: empty arena, every entry negative.
  auto leaves_only = forest::RandomForest::FromTrees({plus, minus, plus}).MoveValue();
  EXPECT_EQ(leaves_only.PredictBatch(d), reference::PredictBatch(leaves_only, d));
  EXPECT_DOUBLE_EQ(leaves_only.Accuracy(d), reference::Accuracy(leaves_only, d));
}

TEST(FlatEquivalenceTest, EmptyAndTinyDatasets) {
  auto forest = MakeForest(51, 5, 90, 3);
  data::Dataset empty(3);
  EXPECT_TRUE(forest.PredictBatch(empty).empty());
  EXPECT_TRUE(forest.PredictAllBatch(empty).empty());
  EXPECT_DOUBLE_EQ(forest.Accuracy(empty), 0.0);  // documented convention

  data::Dataset one(3);
  ASSERT_TRUE(one.AddRow(std::vector<float>{0.2f, 0.8f, 0.5f}, -1).ok());
  EXPECT_EQ(forest.PredictBatch(one), reference::PredictBatch(forest, one));
  EXPECT_EQ(forest.PredictAllBatch(one), reference::PredictAllBatch(forest, one));
  EXPECT_DOUBLE_EQ(forest.Accuracy(one), reference::Accuracy(forest, one));
}

TEST(FlatEquivalenceTest, CachedFlatImageSurvivesCopiesAndRepeatedCalls) {
  // RandomForest lazily caches its packed image; copies share it and
  // repeated batch calls must keep returning identical results.
  auto forest = MakeForest(55, 6, 120, 5);
  auto probe = data::synthetic::MakeBlobs(56, 80, 5, 1.0);
  const auto first = forest.PredictAllBatch(probe);   // builds the cache
  const auto copy = forest;                           // shares the cache
  EXPECT_EQ(copy.PredictAllBatch(probe), first);
  EXPECT_EQ(forest.PredictAllBatch(probe), first);    // cache hit
  EXPECT_DOUBLE_EQ(forest.Accuracy(probe), reference::Accuracy(forest, probe));
}

TEST(FlatEquivalenceTest, GbdtScoresAreBitExact) {
  for (uint64_t seed : {61u, 62u}) {
    auto d = data::synthetic::MakeBlobs(seed, 220, 6, 0.9);
    boosting::GbdtConfig config;
    config.num_trees = 25;
    auto model = boosting::Gbdt::Fit(d, config).MoveValue();
    auto probe = data::synthetic::MakeBlobs(seed + 9, 143, 6, 0.9);

    // Scores, not just signs, must be bit-identical with the scalar path.
    auto flat = FlatEnsemble::FromRegressionTrees(
        model.trees(), model.initial_score(), model.learning_rate());
    for (size_t threads : {1u, 2u, 4u}) {
      BatchOptions options;
      options.num_threads = threads;
      BatchPredictor predictor(flat, options);
      const auto scores = predictor.Scores(probe);
      ASSERT_EQ(scores.size(), probe.num_rows());
      for (size_t i = 0; i < probe.num_rows(); ++i) {
        EXPECT_EQ(scores[i], model.Score(probe.Row(i))) << "row " << i;
      }
    }

    EXPECT_DOUBLE_EQ(model.Accuracy(probe), reference::Accuracy(model, probe));
    for (size_t k : {0u, 1u, 7u, 25u, 1000u}) {
      EXPECT_DOUBLE_EQ(model.StagedAccuracy(probe, k),
                       reference::StagedAccuracy(model, probe, k))
          << "k=" << k;
    }
  }
}

TEST(FlatEquivalenceTest, StagedAccuracyCurveMatchesPerStageRescans) {
  auto d = data::synthetic::MakeBlobs(71, 180, 5, 1.1);
  boosting::GbdtConfig config;
  config.num_trees = 12;
  auto model = boosting::Gbdt::Fit(d, config).MoveValue();
  auto probe = data::synthetic::MakeBlobs(72, 95, 5, 1.1);
  const auto curve = model.StagedAccuracyCurve(probe);
  ASSERT_EQ(curve.size(), model.num_trees() + 1);
  for (size_t k = 0; k <= model.num_trees(); ++k) {
    EXPECT_DOUBLE_EQ(curve[k], reference::StagedAccuracy(model, probe, k))
        << "k=" << k;
  }
  EXPECT_DOUBLE_EQ(curve.back(), model.Accuracy(probe));

  data::Dataset empty(5);
  const auto empty_curve = model.StagedAccuracyCurve(empty);
  ASSERT_EQ(empty_curve.size(), model.num_trees() + 1);
  for (double v : empty_curve) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace treewm::predict
