// Property tests for the quantized-threshold kernel (quantized_ensemble.h):
// bin boundaries sit exactly at training thresholds, so on every covered
// configuration the quantized kernel must be BIT-EXACT with the scalar
// reference loops — the same contract the FloatKey kernel carries — across
// randomized models, duplicate/near-duplicate thresholds, all-leaf trees,
// empty datasets, thread counts, both bin widths, both child widths, and
// the >65535-distinct-thresholds fallback to the FloatKey kernel.

#include "predict/quantized_ensemble.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/batch_predictor.h"
#include "predict/flat_ensemble.h"
#include "predict/reference.h"
#include "tree/decision_tree.h"

namespace treewm::predict {
namespace {

forest::RandomForest MakeForest(uint64_t seed, size_t num_trees, size_t rows,
                                size_t features, int max_depth = -1) {
  auto d = data::synthetic::MakeBlobs(seed, rows, features, 1.0);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  config.tree.max_depth = max_depth;
  return forest::RandomForest::Fit(d, {}, config).MoveValue();
}

BatchOptions ForceKernel(PredictKernel kernel, size_t threads = 1) {
  BatchOptions options;
  options.kernel = kernel;
  options.num_threads = threads;
  return options;
}

/// Appends a complete binary tree of the given depth splitting only on
/// `feature`, consuming one distinct integer threshold per internal node
/// from *next_threshold. Leaves alternate +1/-1.
int AppendComplete(std::vector<tree::TreeNode>* nodes, int depth,
                   int feature, int* next_threshold, int* leaf_parity) {
  const int index = static_cast<int>(nodes->size());
  if (depth == 0) {
    const int label = (*leaf_parity)++ % 2 == 0 ? +1 : -1;
    nodes->push_back(tree::TreeNode{-1, 0.0f, -1, -1, label});
    return index;
  }
  nodes->push_back(tree::TreeNode{feature,
                                  static_cast<float>((*next_threshold)++),
                                  -1, -1, 0});
  (*nodes)[index].left = AppendComplete(nodes, depth - 1, feature,
                                        next_threshold, leaf_parity);
  (*nodes)[index].right = AppendComplete(nodes, depth - 1, feature,
                                         next_threshold, leaf_parity);
  return index;
}

tree::DecisionTree CompleteTree(int depth, int feature, int* next_threshold,
                                size_t num_features) {
  std::vector<tree::TreeNode> nodes;
  int parity = 0;
  AppendComplete(&nodes, depth, feature, next_threshold, &parity);
  return tree::DecisionTree::FromNodes(std::move(nodes), num_features).MoveValue();
}

/// Probe rows sweeping across the integer threshold range, deliberately
/// including exact thresholds (the x == v boundary the <= rule hinges on).
data::Dataset IntegerProbe(size_t num_features, int lo, int hi, int step) {
  data::Dataset d(num_features);
  for (int v = lo; v <= hi; v += step) {
    std::vector<float> on_boundary(num_features, static_cast<float>(v));
    std::vector<float> between(num_features, static_cast<float>(v) + 0.5f);
    EXPECT_TRUE(d.AddRow(on_boundary, +1).ok());
    EXPECT_TRUE(d.AddRow(between, -1).ok());
  }
  return d;
}

TEST(QuantizedBuildTest, SelectsU8WidthUpTo255Cuts) {
  int next = 0;
  auto t = CompleteTree(8, 0, &next, 2);  // 255 internal nodes, 255 cuts
  auto forest = forest::RandomForest::FromTrees({t}).MoveValue();
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto q = flat.Quantized();
  ASSERT_TRUE(q->eligible());
  EXPECT_EQ(q->bin_width(), QuantizedEnsemble::BinWidth::kU8);
  EXPECT_EQ(q->child_width(), QuantizedEnsemble::ChildWidth::kI16);
  EXPECT_EQ(q->num_cuts(0), 255u);
  EXPECT_EQ(q->num_cuts(1), 0u);  // never split on -> every row bins to 0

  auto probe = IntegerProbe(2, -1, 256, 3);
  BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized));
  EXPECT_EQ(predictor.ChosenKernel(), PredictKernel::kQuantized);
  EXPECT_EQ(predictor.PredictLabels(probe), reference::PredictBatch(forest, probe));
}

TEST(QuantizedBuildTest, SelectsU16WidthAbove255Cuts) {
  int next = 0;
  auto big = CompleteTree(8, 0, &next, 2);  // 255 cuts on feature 0
  auto one = tree::DecisionTree::FromNodes(
                 {tree::TreeNode{0, 300.5f, 1, 2, 0},
                  tree::TreeNode{-1, 0, -1, -1, +1},
                  tree::TreeNode{-1, 0, -1, -1, -1}},
                 2)
                 .MoveValue();  // a 256th distinct cut
  auto forest = forest::RandomForest::FromTrees({big, one}).MoveValue();
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto q = flat.Quantized();
  ASSERT_TRUE(q->eligible());
  EXPECT_EQ(q->bin_width(), QuantizedEnsemble::BinWidth::kU16);
  EXPECT_EQ(q->num_cuts(0), 256u);

  auto probe = IntegerProbe(2, -1, 310, 3);
  BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized));
  EXPECT_EQ(predictor.PredictAllLabels(probe),
            reference::PredictAllBatch(forest, probe));
}

// One complete depth-16 tree: 65535 internal nodes = exactly the bin-width
// limit (still eligible, u16) and > 32767 nodes in one tree (i32 children).
TEST(QuantizedBuildTest, WideTreeUsesI32ChildrenAtTheU16Boundary) {
  int next = 0;
  auto t = CompleteTree(16, 0, &next, 1);
  auto forest = forest::RandomForest::FromTrees({t}).MoveValue();
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto q = flat.Quantized();
  ASSERT_TRUE(q->eligible());
  EXPECT_EQ(q->bin_width(), QuantizedEnsemble::BinWidth::kU16);
  EXPECT_EQ(q->child_width(), QuantizedEnsemble::ChildWidth::kI32);
  EXPECT_EQ(q->num_cuts(0), 65535u);
  EXPECT_EQ(q->max_cuts(), 65535u);

  auto probe = IntegerProbe(1, -2, 65536, 1021);
  BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized));
  EXPECT_EQ(predictor.ChosenKernel(), PredictKernel::kQuantized);
  EXPECT_EQ(predictor.PredictLabels(probe), reference::PredictBatch(forest, probe));
  EXPECT_DOUBLE_EQ(predictor.LabelAccuracy(probe),
                   reference::Accuracy(forest, probe));
}

// Two more distinct thresholds push feature 0 past 65535 cuts: the ensemble
// becomes ineligible and every path — including a forced kQuantized — must
// fall back to the FloatKey kernel with identical results.
TEST(QuantizedBuildTest, FallsBackToFloatKeyAbove65535Cuts) {
  int next = 0;
  auto big = CompleteTree(16, 0, &next, 1);
  auto extra = tree::DecisionTree::FromNodes(
                   {tree::TreeNode{0, 70000.25f, 1, 4, 0},
                    tree::TreeNode{0, 70001.25f, 2, 3, 0},
                    tree::TreeNode{-1, 0, -1, -1, +1},
                    tree::TreeNode{-1, 0, -1, -1, -1},
                    tree::TreeNode{-1, 0, -1, -1, +1}},
                   1)
                   .MoveValue();
  auto forest = forest::RandomForest::FromTrees({big, extra}).MoveValue();
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto q = flat.Quantized();
  EXPECT_FALSE(q->eligible());
  EXPECT_EQ(q->max_cuts(), 65537u);

  BatchPredictor forced(flat, ForceKernel(PredictKernel::kQuantized));
  EXPECT_EQ(forced.ChosenKernel(), PredictKernel::kFloatKey);

  auto probe = IntegerProbe(1, -2, 70002, 1021);
  // The model entry point (auto dispatch) must silently take the fallback.
  EXPECT_EQ(forest.PredictBatch(probe), reference::PredictBatch(forest, probe));
  EXPECT_EQ(forced.PredictAllLabels(probe),
            reference::PredictAllBatch(forest, probe));
}

// The core property: quantized == scalar for randomized forests across
// shapes and thread counts, on both the vote and accuracy paths.
TEST(QuantizedEquivalenceTest, ForestBatchesMatchScalarAcrossRandomConfigs) {
  struct Case {
    uint64_t seed;
    size_t trees, rows, features;
    int max_depth;
  };
  const Case cases[] = {
      {211, 1, 50, 3, -1},  {212, 3, 97, 5, 4},    {213, 16, 256, 8, -1},
      {214, 7, 64, 12, 2},  {215, 33, 301, 4, -1}, {216, 2, 1, 6, -1},
  };
  for (const Case& c : cases) {
    auto forest = MakeForest(c.seed, c.trees, c.rows, c.features, c.max_depth);
    auto probe = data::synthetic::MakeBlobs(c.seed + 100, c.rows, c.features, 0.7);
    auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
    ASSERT_TRUE(flat.Quantized()->eligible()) << "seed " << c.seed;
    for (size_t threads : {1u, 2u, 5u}) {
      BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized, threads));
      EXPECT_EQ(predictor.PredictLabels(probe), reference::PredictBatch(forest, probe))
          << "seed " << c.seed << " threads " << threads;
      EXPECT_EQ(predictor.PredictAllLabels(probe),
                reference::PredictAllBatch(forest, probe))
          << "seed " << c.seed << " threads " << threads;
      EXPECT_DOUBLE_EQ(predictor.LabelAccuracy(probe),
                       reference::Accuracy(forest, probe))
          << "seed " << c.seed << " threads " << threads;
    }
  }
}

// Duplicate thresholds (shared across trees) must collapse to one bin;
// near-duplicates (adjacent floats) must stay distinct bins. Probes sit
// exactly on, one ulp below, and one ulp above each threshold.
TEST(QuantizedEquivalenceTest, DuplicateAndNearDuplicateThresholds) {
  const float v = 0.5f;
  const float v_up = std::nextafter(v, 1.0f);
  const float v_down = std::nextafter(v, 0.0f);
  auto tree_at = [](float threshold) {
    return tree::DecisionTree::FromNodes(
               {tree::TreeNode{0, threshold, 1, 2, 0},
                tree::TreeNode{-1, 0, -1, -1, -1},
                tree::TreeNode{-1, 0, -1, -1, +1}},
               1)
        .MoveValue();
  };
  auto forest = forest::RandomForest::FromTrees(
                    {tree_at(v), tree_at(v_up), tree_at(v), tree_at(v_down),
                     tree_at(v_up)})
                    .MoveValue();
  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  const auto q = flat.Quantized();
  ASSERT_TRUE(q->eligible());
  EXPECT_EQ(q->num_cuts(0), 3u);  // {v_down, v, v_up}, duplicates collapsed

  data::Dataset probe(1);
  for (float x : {v_down, v, v_up, std::nextafter(v_up, 1.0f), 0.0f, 1.0f,
                  -std::numeric_limits<float>::infinity(),
                  std::numeric_limits<float>::infinity()}) {
    ASSERT_TRUE(probe.AddRow(std::vector<float>{x}, +1).ok());
  }
  BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized));
  EXPECT_EQ(predictor.PredictAllLabels(probe),
            reference::PredictAllBatch(forest, probe));
}

TEST(QuantizedEquivalenceTest, AllLeafTreesAndEmptyDatasets) {
  auto plus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, +1}}, 4)
                  .MoveValue();
  auto minus = tree::DecisionTree::FromNodes({tree::TreeNode{-1, 0, -1, -1, -1}}, 4)
                   .MoveValue();
  auto d = data::synthetic::MakeBlobs(241, 120, 4, 1.5);
  tree::TreeConfig config;
  auto deep = tree::DecisionTree::Fit(d, {}, config).MoveValue();

  // Mixed single-leaf roots + a real tree, and an all-leaf ensemble (empty
  // arena, every root entry negative).
  for (auto& forest :
       {forest::RandomForest::FromTrees({plus, minus, deep, plus}).MoveValue(),
        forest::RandomForest::FromTrees({plus, minus, plus}).MoveValue()}) {
    auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
    ASSERT_TRUE(flat.Quantized()->eligible());
    BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized));
    EXPECT_EQ(predictor.PredictLabels(d), reference::PredictBatch(forest, d));
    EXPECT_EQ(predictor.PredictAllLabels(d), reference::PredictAllBatch(forest, d));

    data::Dataset empty(4);
    EXPECT_TRUE(predictor.PredictLabels(empty).empty());
    EXPECT_TRUE(predictor.PredictAllVotes(empty).empty());

    data::Dataset one(4);
    ASSERT_TRUE(one.AddRow(std::vector<float>{0.1f, 0.9f, 0.4f, 0.2f}, +1).ok());
    EXPECT_EQ(predictor.PredictAllLabels(one), reference::PredictAllBatch(forest, one));
  }
}

// GBDT regression trees: u16 bins + SoA double leaf values. Scores — not
// just signs — must be bit-identical, and the one-pass staged curve must
// match per-stage scalar re-scans, on the quantized kernel.
TEST(QuantizedEquivalenceTest, GbdtScoresAndStagedCurveAreBitExact) {
  for (uint64_t seed : {261u, 262u}) {
    auto d = data::synthetic::MakeBlobs(seed, 220, 6, 0.9);
    boosting::GbdtConfig config;
    config.num_trees = 25;
    auto model = boosting::Gbdt::Fit(d, config).MoveValue();
    auto probe = data::synthetic::MakeBlobs(seed + 9, 143, 6, 0.9);

    auto flat = FlatEnsemble::FromRegressionTrees(
        model.trees(), model.initial_score(), model.learning_rate());
    ASSERT_TRUE(flat.Quantized()->eligible());
    for (size_t threads : {1u, 2u, 4u}) {
      BatchPredictor predictor(flat, ForceKernel(PredictKernel::kQuantized, threads));
      const auto scores = predictor.Scores(probe);
      ASSERT_EQ(scores.size(), probe.num_rows());
      for (size_t i = 0; i < probe.num_rows(); ++i) {
        EXPECT_EQ(scores[i], model.Score(probe.Row(i))) << "row " << i;
      }
      EXPECT_DOUBLE_EQ(predictor.ScoreAccuracy(probe),
                       reference::Accuracy(model, probe));
      const auto curve = predictor.StagedAccuracyCurve(probe);
      ASSERT_EQ(curve.size(), model.num_trees() + 1);
      for (size_t k = 0; k <= model.num_trees(); ++k) {
        EXPECT_DOUBLE_EQ(curve[k], reference::StagedAccuracy(model, probe, k))
            << "k=" << k;
      }
    }
  }
}

// Regression test for the sign-bit-NaN caveat: FloatKey now normalizes
// every NaN payload (either sign) to the canonical quiet NaN, and the
// quantized row transform bins through the same keys, so negative-NaN
// features must route right (`!(x <= v)`) on BOTH kernels exactly like the
// scalar paths.
TEST(QuantizedEquivalenceTest, NegativeNanPayloadsMatchScalarOnBothKernels) {
  float neg_nan, neg_nan_payload;
  {
    const uint32_t bits = 0xFFC00000u;  // sign-bit quiet NaN
    std::memcpy(&neg_nan, &bits, sizeof(neg_nan));
    const uint32_t payload_bits = 0xFF800001u;  // sign-bit signaling payload
    std::memcpy(&neg_nan_payload, &payload_bits, sizeof(neg_nan_payload));
  }
  ASSERT_TRUE(std::isnan(neg_nan));
  ASSERT_TRUE(std::isnan(neg_nan_payload));

  // Deterministic single-split tree: scalar `x <= 0.5` is false for every
  // NaN, so all NaN rows must take the right child (+1).
  auto t = tree::DecisionTree::FromNodes({tree::TreeNode{0, 0.5f, 1, 2, 0},
                                          tree::TreeNode{-1, 0, -1, -1, -1},
                                          tree::TreeNode{-1, 0, -1, -1, +1}},
                                         2)
               .MoveValue();
  auto forest = forest::RandomForest::FromTrees({t}).MoveValue();
  data::Dataset probe(2);
  ASSERT_TRUE(probe.AddRow(std::vector<float>{neg_nan, 0.0f}, +1).ok());
  ASSERT_TRUE(probe.AddRow(std::vector<float>{neg_nan_payload, 1.0f}, +1).ok());
  ASSERT_TRUE(probe.AddRow(std::vector<float>{std::nanf(""), 2.0f}, +1).ok());
  ASSERT_TRUE(probe.AddRow(std::vector<float>{0.25f, 3.0f}, -1).ok());

  const auto expected = reference::PredictBatch(forest, probe);
  EXPECT_EQ(expected, (std::vector<int>{+1, +1, +1, -1}));

  auto flat = FlatEnsemble::FromClassificationTrees(forest.trees());
  for (PredictKernel kernel : {PredictKernel::kFloatKey, PredictKernel::kQuantized}) {
    BatchPredictor predictor(flat, ForceKernel(kernel));
    EXPECT_EQ(predictor.PredictLabels(probe), expected)
        << "kernel " << static_cast<int>(kernel);
  }

  // And on a trained forest with NaNs injected into several features.
  auto trained = MakeForest(271, 9, 180, 5);
  auto base = data::synthetic::MakeBlobs(272, 60, 5, 0.8);
  data::Dataset nan_probe(5);
  for (size_t r = 0; r < base.num_rows(); ++r) {
    std::vector<float> row(base.Row(r).begin(), base.Row(r).end());
    row[r % 5] = r % 2 == 0 ? neg_nan : neg_nan_payload;
    ASSERT_TRUE(nan_probe.AddRow(row, base.Label(r)).ok());
  }
  auto trained_flat = FlatEnsemble::FromClassificationTrees(trained.trees());
  const auto trained_expected = reference::PredictAllBatch(trained, nan_probe);
  for (PredictKernel kernel : {PredictKernel::kFloatKey, PredictKernel::kQuantized}) {
    BatchPredictor predictor(trained_flat, ForceKernel(kernel));
    EXPECT_EQ(predictor.PredictAllLabels(nan_probe), trained_expected)
        << "kernel " << static_cast<int>(kernel);
  }
}

TEST(KernelDispatchTest, EnvStringParsing) {
  EXPECT_EQ(KernelChoiceFromString(nullptr), PredictKernel::kAuto);
  EXPECT_EQ(KernelChoiceFromString(""), PredictKernel::kAuto);
  EXPECT_EQ(KernelChoiceFromString("quantized"), PredictKernel::kQuantized);
  EXPECT_EQ(KernelChoiceFromString("floatkey"), PredictKernel::kFloatKey);
  EXPECT_EQ(KernelChoiceFromString("flat"), PredictKernel::kFloatKey);
  EXPECT_EQ(KernelChoiceFromString("auto"), PredictKernel::kAuto);
  EXPECT_EQ(KernelChoiceFromString("nonsense"), PredictKernel::kAuto);
}

TEST(KernelDispatchTest, AutoDefaultsToFloatKeyAndExplicitChoiceWins) {
  auto forest = MakeForest(281, 5, 150, 4);
  auto flat = std::make_shared<const FlatEnsemble>(
      FlatEnsemble::FromClassificationTrees(forest.trees()));
  ASSERT_TRUE(flat->Quantized()->eligible());
  // Auto resolves to FloatKey even on an eligible ensemble (quantized is
  // opt-in — it measured slower end-to-end on the bench host; see ROADMAP).
  // Only assertable when no ambient TREEWM_PREDICT_KERNEL override is set:
  // the env value is read once per process, so it cannot be scrubbed here.
  if (KernelChoiceFromString(std::getenv("TREEWM_PREDICT_KERNEL")) ==
      PredictKernel::kAuto) {
    EXPECT_EQ(BatchPredictor(flat).ChosenKernel(), PredictKernel::kFloatKey);
  }
  EXPECT_EQ(BatchPredictor(flat, ForceKernel(PredictKernel::kFloatKey)).ChosenKernel(),
            PredictKernel::kFloatKey);
  EXPECT_EQ(BatchPredictor(flat, ForceKernel(PredictKernel::kQuantized)).ChosenKernel(),
            PredictKernel::kQuantized);
}

// The model-class entry points dispatch automatically; whatever kernel auto
// picks must agree with the scalar reference end to end (this is the no
// call-site-changes guarantee for RandomForest / Gbdt / verification /
// solver consumers).
TEST(KernelDispatchTest, ModelEntryPointsStayExactUnderAutoDispatch) {
  auto forest = MakeForest(291, 12, 200, 6);
  auto probe = data::synthetic::MakeBlobs(292, 160, 6, 0.8);
  EXPECT_EQ(forest.PredictBatch(probe), reference::PredictBatch(forest, probe));
  EXPECT_EQ(forest.PredictAllBatch(probe), reference::PredictAllBatch(forest, probe));
  EXPECT_DOUBLE_EQ(forest.Accuracy(probe), reference::Accuracy(forest, probe));

  auto d = data::synthetic::MakeBlobs(293, 180, 5, 1.1);
  boosting::GbdtConfig config;
  config.num_trees = 12;
  auto model = boosting::Gbdt::Fit(d, config).MoveValue();
  auto gprobe = data::synthetic::MakeBlobs(294, 95, 5, 1.1);
  EXPECT_DOUBLE_EQ(model.Accuracy(gprobe), reference::Accuracy(model, gprobe));
  const auto curve = model.StagedAccuracyCurve(gprobe);
  for (size_t k = 0; k <= model.num_trees(); ++k) {
    EXPECT_DOUBLE_EQ(curve[k], reference::StagedAccuracy(model, gprobe, k));
  }
}

}  // namespace
}  // namespace treewm::predict
