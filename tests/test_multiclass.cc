// Tests for the one-vs-rest multi-class extension.

#include "core/multiclass.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace treewm::core {
namespace {

/// Three Gaussian blobs in 2-D, classes 0/1/2.
MultiClassDataset ThreeBlobs(uint64_t seed, size_t per_class) {
  MultiClassDataset data(2, 3);
  Rng rng(seed);
  const float centers[3][2] = {{0.2f, 0.2f}, {0.8f, 0.2f}, {0.5f, 0.8f}};
  for (int cls = 0; cls < 3; ++cls) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<float> row{
          centers[cls][0] + static_cast<float>(rng.Gaussian(0.0, 0.06)),
          centers[cls][1] + static_cast<float>(rng.Gaussian(0.0, 0.06))};
      EXPECT_TRUE(data.AddRow(row, cls).ok());
    }
  }
  return data;
}

TEST(MultiClassDatasetTest, AddRowValidates) {
  MultiClassDataset data(2, 3);
  EXPECT_TRUE(data.AddRow(std::vector<float>{0.1f, 0.2f}, 0).ok());
  EXPECT_FALSE(data.AddRow(std::vector<float>{0.1f}, 0).ok());
  EXPECT_FALSE(data.AddRow(std::vector<float>{0.1f, 0.2f}, 3).ok());
  EXPECT_FALSE(data.AddRow(std::vector<float>{0.1f, 0.2f}, -1).ok());
}

TEST(MultiClassDatasetTest, BinaryViewIsOneVsRest) {
  MultiClassDataset data = ThreeBlobs(1, 10);
  data::Dataset view = data.BinaryView(1);
  EXPECT_EQ(view.num_rows(), 30u);
  size_t positives = 0;
  for (size_t i = 0; i < view.num_rows(); ++i) {
    if (view.Label(i) == data::kPositive) {
      ++positives;
      EXPECT_EQ(data.Label(i), 1);
    } else {
      EXPECT_NE(data.Label(i), 1);
    }
  }
  EXPECT_EQ(positives, 10u);
}

TEST(MultiClassWatermarkerTest, WatermarksEveryClassAndPredictsWell) {
  MultiClassDataset train = ThreeBlobs(2, 60);
  MultiClassDataset test = ThreeBlobs(3, 30);

  WatermarkConfig config;
  config.seed = 4;
  config.grid.max_depth_grid = {4, -1};
  config.grid.num_folds = 2;
  config.trigger_size = 4;
  config.trigger_training.forest.feature_fraction = 1.0;

  Rng rng(5);
  std::vector<Signature> signatures;
  for (int c = 0; c < 3; ++c) signatures.push_back(Signature::Random(8, 0.5, &rng));

  MultiClassWatermarker watermarker(config);
  auto model = watermarker.CreateWatermark(train, signatures).MoveValue();
  ASSERT_EQ(model.per_class.size(), 3u);
  EXPECT_GT(model.Accuracy(test), 0.9);

  // Each per-class model carries its own verifiable signature property.
  for (int c = 0; c < 3; ++c) {
    const auto& wm = model.per_class[static_cast<size_t>(c)];
    ASSERT_TRUE(wm.t0_converged && wm.t1_converged) << "class " << c;
    const auto votes = wm.model.PredictAll(wm.trigger_set.Row(0));
    const int y = wm.trigger_set.Label(0);
    for (size_t t = 0; t < signatures[static_cast<size_t>(c)].length(); ++t) {
      EXPECT_EQ(votes[t], signatures[static_cast<size_t>(c)].bit(t) == 0 ? y : -y);
    }
  }
}

TEST(MultiClassWatermarkerTest, RequiresOneSignaturePerClass) {
  MultiClassDataset train = ThreeBlobs(6, 20);
  WatermarkConfig config;
  config.seed = 7;
  MultiClassWatermarker watermarker(config);
  Rng rng(8);
  std::vector<Signature> two{Signature::Random(4, 0.5, &rng),
                             Signature::Random(4, 0.5, &rng)};
  EXPECT_FALSE(watermarker.CreateWatermark(train, two).ok());
}

TEST(MultiClassModelTest, BatchedPredictionsAreBitExactWithScalarLoop) {
  // Regression for the last scalar batch path: Accuracy used to run the
  // per-row Predict loop PR 1 removed everywhere else. The batched engine
  // must agree row-for-row with the scalar reference, including the argmax
  // tie rule (lower class id wins).
  MultiClassDataset train = ThreeBlobs(12, 50);
  MultiClassDataset test = ThreeBlobs(13, 40);
  WatermarkConfig config;
  config.seed = 14;
  config.grid.max_depth_grid = {4, -1};
  config.grid.num_folds = 2;
  config.trigger_size = 4;
  config.trigger_training.forest.feature_fraction = 1.0;
  Rng rng(15);
  std::vector<Signature> signatures;
  for (int c = 0; c < 3; ++c) signatures.push_back(Signature::Random(8, 0.5, &rng));
  MultiClassWatermarker watermarker(config);
  auto model = watermarker.CreateWatermark(train, signatures).MoveValue();

  const std::vector<int> batched = model.PredictBatch(test);
  ASSERT_EQ(batched.size(), test.num_rows());
  size_t scalar_correct = 0;
  for (size_t i = 0; i < test.num_rows(); ++i) {
    const int scalar = model.Predict(test.Row(i));
    ASSERT_EQ(batched[i], scalar) << "row " << i;
    if (scalar == test.Label(i)) ++scalar_correct;
  }
  const double scalar_accuracy = static_cast<double>(scalar_correct) /
                                 static_cast<double>(test.num_rows());
  EXPECT_DOUBLE_EQ(model.Accuracy(test), scalar_accuracy);

  // Empty dataset convention.
  MultiClassDataset empty(2, 3);
  EXPECT_TRUE(model.PredictBatch(empty).empty());
  EXPECT_DOUBLE_EQ(model.Accuracy(empty), 0.0);
}

TEST(MultiClassModelTest, PredictTieBreaksDeterministically) {
  MultiClassWatermarkedModel model;
  // No classes: degenerate, but Predict must not crash on per_class empty —
  // skip; instead check 1-class argmax.
  MultiClassDataset train = ThreeBlobs(9, 25);
  WatermarkConfig config;
  config.seed = 10;
  config.grid.max_depth_grid = {-1};
  config.grid.num_folds = 2;
  config.trigger_size = 3;
  config.trigger_training.forest.feature_fraction = 1.0;
  Rng rng(11);
  std::vector<Signature> signatures;
  for (int c = 0; c < 3; ++c) signatures.push_back(Signature::Random(6, 0.5, &rng));
  MultiClassWatermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(train, signatures).MoveValue();
  const int first = wm.Predict(train.Row(0));
  EXPECT_EQ(first, wm.Predict(train.Row(0)));  // deterministic
  EXPECT_GE(first, 0);
  EXPECT_LT(first, 3);
}

}  // namespace
}  // namespace treewm::core
