// Ties the project-invariant linter (tools/lint_invariants.py) into the
// tier-1 test suite:
//   * the linter's own fixtures must each fire EXACTLY their rule (and the
//     clean fixture none) — so a linter regression fails tests, not review;
//   * the repository tree itself must lint clean — so a new naked mutex,
//     unseeded rand() or untagged (void)Status discard fails tests locally,
//     not first in CI.
//
// TREEWM_SOURCE_DIR is injected by CMakeLists.txt. Skips (GTEST_SKIP) when
// python3 is unavailable; the CI static-analysis job runs the linter
// directly and remains the enforcing gate.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <string>

namespace {

#ifndef TREEWM_SOURCE_DIR
#error "TREEWM_SOURCE_DIR must be defined (see CMakeLists.txt)"
#endif

int RunCommand(const std::string& command) {
  const int raw = std::system(command.c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

bool HavePython3() {
  return RunCommand("python3 --version > /dev/null 2>&1") == 0;
}

std::string LinterCommand(const std::string& extra_args) {
  std::string cmd = "python3 \"";
  cmd += TREEWM_SOURCE_DIR;
  cmd += "/tools/lint_invariants.py\" --root \"";
  cmd += TREEWM_SOURCE_DIR;
  cmd += "\"";
  if (!extra_args.empty()) cmd += " " + extra_args;
  return cmd;
}

TEST(LintInvariantsTest, FixturesFireExactlyTheirRules) {
  if (!HavePython3()) GTEST_SKIP() << "python3 not on PATH";
  // --self-test checks every `// expect-lint: <rule>` marker in
  // tools/lint_fixtures/ two-sidedly: the marked line fires exactly that
  // rule, and no unmarked line fires anything.
  EXPECT_EQ(RunCommand(LinterCommand("--self-test")), 0)
      << "linter self-test failed; run tools/lint_invariants.py --self-test";
}

TEST(LintInvariantsTest, RepositoryTreeIsClean) {
  if (!HavePython3()) GTEST_SKIP() << "python3 not on PATH";
  EXPECT_EQ(RunCommand(LinterCommand("")), 0)
      << "tree has invariant violations; run tools/lint_invariants.py";
}

}  // namespace
