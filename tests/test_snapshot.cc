// Tests for the binary ensemble snapshot: bit-exact round-trips for both
// leaf payload kinds, the fail-closed fuzz contract (every prefix
// truncation and every single-byte flip is a typed ParseError), crafted
// valid-CRC malformations, FromParts arena validation, and the
// snapshot.corrupt fault site.

#include "io/ensemble_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "boosting/gbdt.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/batch_predictor.h"
#include "predict/flat_ensemble.h"

namespace treewm::io {
namespace {

using predict::BatchPredictor;
using predict::FlatEnsemble;
using predict::FlatNode;

data::Dataset SmallBlobs(uint64_t seed = 3, size_t rows = 120,
                         size_t features = 5) {
  return data::synthetic::MakeBlobs(seed, rows, features, 1.5);
}

FlatEnsemble SmallForestFlat(size_t num_trees = 5) {
  auto d = SmallBlobs();
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = 11;
  auto forest = forest::RandomForest::Fit(d, {}, config).MoveValue();
  return FlatEnsemble::FromClassificationTrees(forest.trees());
}

FlatEnsemble SmallGbdtFlat() {
  auto d = SmallBlobs(7);
  boosting::GbdtConfig config;
  config.num_trees = 6;
  auto gbdt = boosting::Gbdt::Fit(d, config).MoveValue();
  return FlatEnsemble::FromRegressionTrees(gbdt.trees(), gbdt.initial_score(),
                                           gbdt.learning_rate());
}

/// Recomputes the header CRC after a test mutated the image, so the
/// post-CRC validation paths (which assume intact bytes) are reachable.
std::vector<uint8_t> WithFixedCrc(std::vector<uint8_t> bytes) {
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, std::span<const uint8_t>(bytes).subspan(4, 8));
  crc = Crc32Update(crc, std::span<const uint8_t>(bytes).subspan(16));
  crc = Crc32Finish(crc);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return bytes;
}

void ExpectParseError(const Result<FlatEnsemble>& result, const char* what) {
  ASSERT_FALSE(result.ok()) << what;
  EXPECT_EQ(result.status().code(), StatusCode::kParseError) << what;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(SnapshotTest, ClassificationRoundTripIsBitExact) {
  const FlatEnsemble original = SmallForestFlat();
  const std::vector<uint8_t> encoded = EncodeEnsembleSnapshot(original);
  auto decoded = DecodeEnsembleSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Deterministic encoding makes re-encoding the decoded ensemble a
  // bit-exact equality check over the whole arena.
  EXPECT_EQ(EncodeEnsembleSnapshot(decoded.value()), encoded);
  EXPECT_EQ(decoded.value().num_trees(), original.num_trees());
  EXPECT_EQ(decoded.value().num_features(), original.num_features());
  EXPECT_FALSE(decoded.value().is_regression());

  const auto probe = SmallBlobs(99);
  BatchPredictor a(original);
  BatchPredictor b(std::move(decoded).MoveValue());
  EXPECT_EQ(a.PredictLabels(probe), b.PredictLabels(probe));
}

TEST(SnapshotTest, GbdtRoundTripIsBitExact) {
  const FlatEnsemble original = SmallGbdtFlat();
  const std::vector<uint8_t> encoded = EncodeEnsembleSnapshot(original);
  auto decoded = DecodeEnsembleSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeEnsembleSnapshot(decoded.value()), encoded);
  EXPECT_TRUE(decoded.value().is_regression());
  EXPECT_EQ(decoded.value().initial_score(), original.initial_score());
  EXPECT_EQ(decoded.value().learning_rate(), original.learning_rate());

  const auto probe = SmallBlobs(98);
  BatchPredictor a(original);
  BatchPredictor b(std::move(decoded).MoveValue());
  EXPECT_EQ(a.Scores(probe), b.Scores(probe));  // bit-exact doubles
}

TEST(SnapshotTest, FileRoundTripAndChecksumIdentity) {
  const FlatEnsemble original = SmallForestFlat();
  const std::string path = ::testing::TempDir() + "/treewm_snapshot_rt.twsn";
  ASSERT_TRUE(SaveEnsembleSnapshot(original, path).ok());
  auto loaded = LoadEnsembleSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<uint8_t> encoded = EncodeEnsembleSnapshot(original);
  EXPECT_EQ(EncodeEnsembleSnapshot(loaded.value()), encoded);

  // EnsembleChecksum is exactly the CRC the snapshot carries at [12, 16).
  uint32_t header_crc = 0;
  for (int i = 3; i >= 0; --i) header_crc = (header_crc << 8) | encoded[12 + i];
  EXPECT_EQ(EnsembleChecksum(original), header_crc);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsIoErrorNotParseError) {
  auto missing =
      LoadEnsembleSnapshot(::testing::TempDir() + "/treewm_no_such.twsn");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Fail-closed fuzz (mirrors the wire framing contract)

TEST(SnapshotTest, EveryPrefixTruncationFailsClosed) {
  const std::vector<uint8_t> full = EncodeEnsembleSnapshot(SmallForestFlat(2));
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = DecodeEnsembleSnapshot(
        std::span<const uint8_t>(full.data(), len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded";
    ASSERT_EQ(result.status().code(), StatusCode::kParseError) << len;
  }
}

TEST(SnapshotTest, EverySingleByteFlipFailsClosed) {
  const std::vector<uint8_t> full = EncodeEnsembleSnapshot(SmallForestFlat(2));
  // Every byte matters: the magic by comparison, the version by its range
  // check, the CRC field and everything it covers by the checksum.
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<uint8_t> corrupt = full;
    corrupt[i] ^= 0x20;
    auto result = DecodeEnsembleSnapshot(corrupt);
    ASSERT_FALSE(result.ok()) << "flip at byte " << i << " decoded";
    ASSERT_EQ(result.status().code(), StatusCode::kParseError) << i;
  }
}

TEST(SnapshotTest, CraftedValidCrcMalformationsFailClosed) {
  const std::vector<uint8_t> good = EncodeEnsembleSnapshot(SmallForestFlat(2));
  // A hostile writer can make the CRC match anything; the structural
  // validation behind it must still refuse.

  {  // Unsupported format version.
    std::vector<uint8_t> bad = good;
    bad[4] = 9;
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)), "version 9");
  }
  {  // Section count that walks off the end.
    std::vector<uint8_t> bad = good;
    bad[8] = 200;
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)),
                     "oversized section count");
  }
  {  // Fewer sections than present: the leftovers become trailing bytes.
    std::vector<uint8_t> bad = good;
    bad[8] = 3;
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)),
                     "trailing bytes");
  }
  {  // First section's id rewritten to an unknown value.
    std::vector<uint8_t> bad = good;
    bad[16] = 6;
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)), "unknown id");
  }
  {  // First section's id rewritten to duplicate the roots section.
    std::vector<uint8_t> bad = good;
    bad[16] = 2;
    // Meta bytes masquerading as roots: either the duplicate-section check
    // or a size check fires — any ParseError is a pass.
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)), "duplicate");
  }
  {  // Meta's num_features zeroed: FromParts must reject the intact arena.
    std::vector<uint8_t> bad = good;
    for (int i = 0; i < 8; ++i) bad[16 + 12 + i] = 0;  // meta payload u64 #1
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)),
                     "zero features");
  }
  {  // Section length grown past the file.
    std::vector<uint8_t> bad = good;
    bad[16 + 4 + 3] = 0x7F;  // high byte of the meta section's u64 length
    ExpectParseError(DecodeEnsembleSnapshot(WithFixedCrc(bad)),
                     "oversized section length");
  }
}

TEST(SnapshotTest, CorruptFaultSiteFailsLoadClosed) {
  const std::string path = ::testing::TempDir() + "/treewm_snapshot_fault.twsn";
  ASSERT_TRUE(SaveEnsembleSnapshot(SmallForestFlat(2), path).ok());
  {
    ScopedFault fault("serve.registry.snapshot.corrupt", {});
    auto result = LoadEnsembleSnapshot(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
  // Disarmed, the very same file loads — the corruption was injected, not
  // on disk.
  EXPECT_TRUE(LoadEnsembleSnapshot(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FromParts arena validation

struct Parts {
  std::vector<FlatNode> nodes;
  std::vector<int64_t> roots;
  std::vector<int8_t> leaf_labels;
  std::vector<double> leaf_values;
  size_t num_features = 2;
  bool is_regression = false;
  double initial_score = 0.0;
  double learning_rate = 0.0;
};

/// One tree: root splits feature 0, children are leaves 0 and 1.
Parts ValidParts() {
  Parts p;
  FlatNode n;
  n.ft = 0;  // feature 0, threshold key 0
  n.child[0] = ~int64_t{0};
  n.child[1] = ~int64_t{1};
  n.pad = 0;
  p.nodes.push_back(n);
  p.roots.push_back(0);
  p.leaf_labels = {1, -1};
  return p;
}

Result<FlatEnsemble> Build(const Parts& p) {
  return FlatEnsemble::FromParts(p.nodes, p.roots, p.leaf_labels,
                                 p.leaf_values, p.num_features,
                                 p.is_regression, p.initial_score,
                                 p.learning_rate);
}

TEST(FromPartsTest, AcceptsAValidArena) {
  auto built = Build(ValidParts());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().num_trees(), 1u);
  EXPECT_EQ(built.value().num_leaves(), 2u);
}

TEST(FromPartsTest, RejectsStructurallyBadArenas) {
  {  // Root offset beyond the arena.
    Parts p = ValidParts();
    p.roots[0] = 32;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Root offset not 32-aligned.
    Parts p = ValidParts();
    p.roots[0] = 8;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Leaf reference out of payload range.
    Parts p = ValidParts();
    p.nodes[0].child[1] = ~int64_t{7};
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Self/backward internal edge: traversal would never terminate.
    Parts p = ValidParts();
    p.nodes[0].child[0] = 0;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Split feature out of range.
    Parts p = ValidParts();
    p.nodes[0].ft = 5;  // feature 5 of 2
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Classification label must be exactly +1/-1.
    Parts p = ValidParts();
    p.leaf_labels[0] = 0;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Wrong leaf payload kind for the declared mode.
    Parts p = ValidParts();
    p.is_regression = true;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // Classification must not smuggle additive-model constants.
    Parts p = ValidParts();
    p.learning_rate = 0.1;
    EXPECT_FALSE(Build(p).ok());
  }
  {  // No trees at all.
    Parts p = ValidParts();
    p.roots.clear();
    EXPECT_FALSE(Build(p).ok());
  }
}

}  // namespace
}  // namespace treewm::io
