// Unit tests for 3CNF formulas.

#include "reduction/three_cnf.h"

#include <gtest/gtest.h>

namespace treewm::reduction {
namespace {

using sat::Lit;

ThreeCnf PaperExample() {
  // (x1 | x2) & (x2 | x3 | ~x4), 0-indexed: (x0|x1) & (x1|x2|~x3).
  ThreeCnf f;
  f.num_vars = 4;
  f.clauses = {{Lit::Make(0), Lit::Make(1)},
               {Lit::Make(1), Lit::Make(2), Lit::Make(3, true)}};
  return f;
}

TEST(ThreeCnfTest, ValidateAcceptsPaperExample) {
  EXPECT_TRUE(PaperExample().Validate().ok());
}

TEST(ThreeCnfTest, ValidateRejectsBadArity) {
  ThreeCnf f;
  f.num_vars = 5;
  f.clauses = {{Lit::Make(0), Lit::Make(1), Lit::Make(2), Lit::Make(3)}};
  EXPECT_FALSE(f.Validate().ok());
  f.clauses = {{}};
  EXPECT_FALSE(f.Validate().ok());
}

TEST(ThreeCnfTest, ValidateRejectsOutOfRangeVariable) {
  ThreeCnf f;
  f.num_vars = 2;
  f.clauses = {{Lit::Make(2)}};
  EXPECT_FALSE(f.Validate().ok());
}

TEST(ThreeCnfTest, EvaluateMatchesSemantics) {
  ThreeCnf f = PaperExample();
  // x0=T satisfies clause 1; x3=F satisfies clause 2 via ~x3.
  EXPECT_TRUE(f.Evaluate({true, false, false, false}));
  // x0=F, x1=F falsifies clause 1.
  EXPECT_FALSE(f.Evaluate({false, false, true, false}));
  // x1=T satisfies both clauses.
  EXPECT_TRUE(f.Evaluate({false, true, false, true}));
  // All false: clause 1 falsified.
  EXPECT_FALSE(f.Evaluate({false, false, false, true}));
}

TEST(ThreeCnfTest, ToStringIsReadable) {
  EXPECT_EQ(PaperExample().ToString(), "(x0 | x1) & (x1 | x2 | ~x3)");
}

TEST(RandomThreeCnfTest, ShapeIsCorrect) {
  Rng rng(3);
  auto f = RandomThreeCnf(10, 42, &rng).MoveValue();
  EXPECT_EQ(f.num_vars, 10);
  EXPECT_EQ(f.clauses.size(), 42u);
  EXPECT_TRUE(f.Validate().ok());
  for (const auto& clause : f.clauses) {
    EXPECT_EQ(clause.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(clause[0].var(), clause[1].var());
    EXPECT_NE(clause[1].var(), clause[2].var());
    EXPECT_NE(clause[0].var(), clause[2].var());
  }
}

TEST(RandomThreeCnfTest, RejectsDegenerateShapes) {
  Rng rng(4);
  EXPECT_FALSE(RandomThreeCnf(2, 5, &rng).ok());
  EXPECT_FALSE(RandomThreeCnf(5, 0, &rng).ok());
}

TEST(CnfFormulaBridgeTest, RoundTrips) {
  ThreeCnf f = PaperExample();
  sat::CnfFormula generic = ToCnfFormula(f);
  EXPECT_EQ(generic.num_vars, 4);
  auto back = FromCnfFormula(generic);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().clauses, f.clauses);
}

TEST(CnfFormulaBridgeTest, RejectsWideClauses) {
  sat::CnfFormula generic;
  generic.num_vars = 5;
  generic.clauses = {{Lit::Make(0), Lit::Make(1), Lit::Make(2), Lit::Make(3)}};
  EXPECT_FALSE(FromCnfFormula(generic).ok());
}

}  // namespace
}  // namespace treewm::reduction
