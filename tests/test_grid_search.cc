// Unit tests for grid search with stratified CV.

#include "forest/grid_search.h"

#include <gtest/gtest.h>

#include <set>

#include "common/fault_injection.h"
#include "data/synthetic.h"

namespace treewm::forest {
namespace {

TEST(StratifiedFoldsTest, EveryRowGetsAFold) {
  auto d = data::synthetic::MakeBlobs(1, 100, 4, 1.0, 0.3);
  Rng rng(2);
  auto folds = StratifiedFolds(d, 4, &rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds.value().size(), 100u);
  for (size_t f : folds.value()) EXPECT_LT(f, 4u);
}

TEST(StratifiedFoldsTest, FoldsAreClassBalanced) {
  auto d = data::synthetic::MakeBlobs(2, 400, 4, 1.0, 0.25);
  Rng rng(3);
  auto folds = StratifiedFolds(d, 4, &rng).MoveValue();
  for (size_t fold = 0; fold < 4; ++fold) {
    size_t pos = 0;
    size_t total = 0;
    for (size_t i = 0; i < d.num_rows(); ++i) {
      if (folds[i] != fold) continue;
      ++total;
      if (d.Label(i) == data::kPositive) ++pos;
    }
    EXPECT_NEAR(static_cast<double>(total), 100.0, 2.0);
    EXPECT_NEAR(static_cast<double>(pos) / static_cast<double>(total), 0.25, 0.02);
  }
}

TEST(StratifiedFoldsTest, RejectsDegenerateRequests) {
  auto d = data::synthetic::MakeBlobs(3, 10, 2, 1.0);
  Rng rng(4);
  EXPECT_FALSE(StratifiedFolds(d, 1, &rng).ok());
  EXPECT_FALSE(StratifiedFolds(d, 11, &rng).ok());
}

TEST(GridSearchTest, EvaluatesWholeGrid) {
  auto d = data::synthetic::MakeBlobs(4, 300, 5, 2.0);
  GridSearchConfig config;
  config.max_depth_grid = {2, 4, -1};
  config.max_leaf_nodes_grid = {8, -1};
  config.num_folds = 3;
  auto outcome = GridSearch(d, 7, config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().evaluated.size(), 6u);
  EXPECT_GT(outcome.value().best_accuracy, 0.9);
}

TEST(GridSearchTest, BestIsArgmaxOfEvaluated) {
  auto d = data::synthetic::MakeBlobs(5, 250, 4, 1.0);
  GridSearchConfig config;
  config.max_depth_grid = {1, 3, -1};
  auto outcome = GridSearch(d, 5, config).MoveValue();
  double best = 0.0;
  for (const auto& point : outcome.evaluated) best = std::max(best, point.cv_accuracy);
  EXPECT_DOUBLE_EQ(outcome.best_accuracy, best);
}

TEST(GridSearchTest, DeepTreesWinOnXor) {
  // XOR cannot be solved at depth 1, so the search must not pick it.
  auto d = data::synthetic::MakeXor(6, 600, 4);
  GridSearchConfig config;
  config.max_depth_grid = {1, -1};
  auto outcome = GridSearch(d, 5, config).MoveValue();
  EXPECT_EQ(outcome.best.max_depth, -1);
}

TEST(GridSearchTest, AccuracyTableIsThreadCountInvariant) {
  // Grid points fan out across the pool with pre-drawn seeds and fixed
  // result slots: the evaluated table, best config and best accuracy must
  // be bit-identical at every thread count.
  auto d = data::synthetic::MakeBlobs(8, 240, 5, 1.2);
  GridSearchConfig config;
  config.max_depth_grid = {2, 4, -1};
  config.max_leaf_nodes_grid = {6, -1};
  config.num_folds = 3;
  config.num_threads = 1;
  auto serial = GridSearch(d, 5, config).MoveValue();
  ASSERT_EQ(serial.evaluated.size(), 6u);
  for (size_t threads : {2u, 4u, 0u}) {  // 0 = process-global pool
    config.num_threads = threads;
    auto parallel = GridSearch(d, 5, config).MoveValue();
    ASSERT_EQ(parallel.evaluated.size(), serial.evaluated.size());
    for (size_t p = 0; p < serial.evaluated.size(); ++p) {
      EXPECT_EQ(parallel.evaluated[p].config.max_depth,
                serial.evaluated[p].config.max_depth);
      EXPECT_EQ(parallel.evaluated[p].config.max_leaf_nodes,
                serial.evaluated[p].config.max_leaf_nodes);
      // Bit equality, not NEAR: same forests, same fold sums, same order.
      EXPECT_EQ(parallel.evaluated[p].cv_accuracy, serial.evaluated[p].cv_accuracy)
          << "threads=" << threads << " point=" << p;
    }
    EXPECT_EQ(parallel.best_accuracy, serial.best_accuracy);
    EXPECT_EQ(parallel.best.max_depth, serial.best.max_depth);
    EXPECT_EQ(parallel.best.max_leaf_nodes, serial.best.max_leaf_nodes);
  }
}

TEST(GridSearchTest, RejectedSubmitFallsBackInlineWithIdenticalResults) {
  // When the pool refuses work (e.g. shutdown racing a search, simulated
  // here by arming the Submit fault site), ParallelFor runs the rejected
  // grid points inline on the caller. That degraded path must produce the
  // SAME accuracy table bit-for-bit — seeds are pre-drawn in grid order and
  // results land in fixed slots, so where a point executes cannot matter.
  auto d = data::synthetic::MakeBlobs(8, 240, 5, 1.2);
  GridSearchConfig config;
  config.max_depth_grid = {2, 4, -1};
  config.max_leaf_nodes_grid = {6, -1};
  config.num_folds = 3;
  config.num_threads = 1;
  auto serial = GridSearch(d, 5, config).MoveValue();
  ASSERT_EQ(serial.evaluated.size(), 6u);

  ScopedFault fault("thread_pool.submit.reject", FaultSpec{});
  config.num_threads = 4;
  auto degraded = GridSearch(d, 5, config).MoveValue();
  EXPECT_GT(fault.fires(), 0u);  // the rejection path actually ran
  ASSERT_EQ(degraded.evaluated.size(), serial.evaluated.size());
  for (size_t p = 0; p < serial.evaluated.size(); ++p) {
    EXPECT_EQ(degraded.evaluated[p].config.max_depth,
              serial.evaluated[p].config.max_depth);
    EXPECT_EQ(degraded.evaluated[p].config.max_leaf_nodes,
              serial.evaluated[p].config.max_leaf_nodes);
    EXPECT_EQ(degraded.evaluated[p].cv_accuracy, serial.evaluated[p].cv_accuracy)
        << "point=" << p;
  }
  EXPECT_EQ(degraded.best_accuracy, serial.best_accuracy);
  EXPECT_EQ(degraded.best.max_depth, serial.best.max_depth);
  EXPECT_EQ(degraded.best.max_leaf_nodes, serial.best.max_leaf_nodes);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  auto d = data::synthetic::MakeBlobs(7, 50, 3, 1.0);
  GridSearchConfig config;
  config.max_depth_grid = {};
  EXPECT_FALSE(GridSearch(d, 3, config).ok());
}

}  // namespace
}  // namespace treewm::forest
