// Tests for model / bundle persistence.

#include "io/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/watermark.h"
#include "data/synthetic.h"

namespace treewm::io {
namespace {

forest::RandomForest TrainSmall(uint64_t seed) {
  auto data = data::synthetic::MakeBlobs(seed, 150, 5, 1.5);
  forest::ForestConfig config;
  config.num_trees = 5;
  config.seed = seed;
  return forest::RandomForest::Fit(data, {}, config).MoveValue();
}

core::WatermarkedModel MakeWatermarked(uint64_t seed) {
  auto data = data::synthetic::MakeBlobs(seed, 300, 6, 2.0);
  Rng rng(seed);
  auto sigma = core::Signature::Random(8, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = seed + 1;
  config.grid.max_depth_grid = {-1};
  config.grid.num_folds = 2;
  core::Watermarker watermarker(config);
  return watermarker.CreateWatermark(data, sigma).MoveValue();
}

TEST(ForestIoTest, SaveLoadRoundTrip) {
  auto forest = TrainSmall(1);
  const std::string path = ::testing::TempDir() + "/treewm_forest.json";
  ASSERT_TRUE(SaveForest(forest, path).ok());
  auto loaded = LoadForest(path);
  ASSERT_TRUE(loaded.ok());
  auto data = data::synthetic::MakeBlobs(2, 50, 5, 1.5);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(loaded.value().PredictAll(data.Row(i)), forest.PredictAll(data.Row(i)));
  }
  std::remove(path.c_str());
}

TEST(ForestIoTest, LoadRejectsCorruptFile) {
  const std::string path = ::testing::TempDir() + "/treewm_corrupt.json";
  ASSERT_TRUE(WriteStringToFile(path, "{not json").ok());
  EXPECT_FALSE(LoadForest(path).ok());
  ASSERT_TRUE(WriteStringToFile(path, "{\"format_version\": 99}").ok());
  EXPECT_FALSE(LoadForest(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetJsonTest, RoundTrip) {
  auto data = data::synthetic::MakeBlobs(3, 30, 4, 1.0);
  data.set_name("roundtrip");
  auto parsed = DatasetFromJson(DatasetToJson(data));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name(), "roundtrip");
  ASSERT_EQ(parsed.value().num_rows(), data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(parsed.value().Label(i), data.Label(i));
    for (size_t j = 0; j < data.num_features(); ++j) {
      EXPECT_FLOAT_EQ(parsed.value().At(i, j), data.At(i, j));
    }
  }
}

TEST(BundleIoTest, RoundTripPreservesEverything) {
  auto wm = MakeWatermarked(10);
  WatermarkBundle bundle = BundleFrom(wm);
  const std::string path = ::testing::TempDir() + "/treewm_bundle.json";
  ASSERT_TRUE(SaveBundle(bundle, path).ok());
  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().signature, wm.signature);
  EXPECT_EQ(loaded.value().trigger_set.num_rows(), wm.trigger_set.num_rows());
  // The signature property survives the round trip.
  for (size_t i = 0; i < loaded.value().trigger_set.num_rows(); ++i) {
    const auto votes =
        loaded.value().model.PredictAll(loaded.value().trigger_set.Row(i));
    const int y = loaded.value().trigger_set.Label(i);
    for (size_t t = 0; t < loaded.value().signature.length(); ++t) {
      EXPECT_EQ(votes[t], loaded.value().signature.bit(t) == 0 ? y : -y);
    }
  }
  std::remove(path.c_str());
}

TEST(BundleIoTest, RejectsInconsistentBundle) {
  auto wm = MakeWatermarked(20);
  JsonValue doc = BundleToJson(BundleFrom(wm));
  // Truncate the signature: length no longer matches the tree count.
  doc.Set("signature", core::Signature::FromBitString("01").MoveValue().ToJson());
  EXPECT_FALSE(BundleFromJson(doc).ok());
}

TEST(BundleIoTest, MissingFieldsFail) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("format_version", JsonValue(kFormatVersion));
  EXPECT_FALSE(BundleFromJson(doc).ok());
}

// A bundle cut off mid-document (power loss, partial download) must be a
// typed error at every truncation point, never an assert or garbage model.
TEST(BundleIoTest, TruncatedFileFailsClosedAtEveryPrefix) {
  auto wm = MakeWatermarked(30);
  const std::string full = BundleToJson(BundleFrom(wm)).Dump();
  const std::string path = ::testing::TempDir() + "/treewm_truncated.json";
  // Step through prefixes coarsely (every 97 bytes) plus the final byte.
  for (size_t len = 0; len < full.size(); len += 97) {
    ASSERT_TRUE(WriteStringToFile(path, std::string_view(full).substr(0, len)).ok());
    auto loaded = LoadBundle(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
  ASSERT_TRUE(
      WriteStringToFile(path, std::string_view(full).substr(0, full.size() - 1)).ok());
  EXPECT_FALSE(LoadBundle(path).ok());
  std::remove(path.c_str());
}

// The registry cold-starts models from forest JSON when no snapshot
// exists; a forest file cut off at any point must stay a typed ParseError
// — the snapshot tests (test_snapshot.cc) hold the binary path to the same
// bar at every single byte.
TEST(ForestIoTest, TruncatedFileFailsClosedAtEveryPrefix) {
  auto forest = TrainSmall(40);
  const std::string path = ::testing::TempDir() + "/treewm_forest_trunc.json";
  ASSERT_TRUE(SaveForest(forest, path).ok());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  const std::string full = read_back.value();
  for (size_t len = 0; len < full.size(); len += 41) {
    ASSERT_TRUE(WriteStringToFile(path, std::string_view(full).substr(0, len)).ok());
    auto loaded = LoadForest(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
  ASSERT_TRUE(
      WriteStringToFile(path, std::string_view(full).substr(0, full.size() - 1)).ok());
  EXPECT_FALSE(LoadForest(path).ok());
  std::remove(path.c_str());
}

TEST(ForestIoTest, WrongFieldTypesFailClosed) {
  // Version as a string, not a number.
  auto parsed = JsonValue::Parse(R"({"format_version": "1", "forest": {}})");
  ASSERT_TRUE(parsed.ok());
  {
    auto bad = BundleFromJson(parsed.value());
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  }
  // Tree node fields with the wrong types must not assert.
  const char* bad_tree = R"({
    "format_version": 1,
    "forest": {"trees": [{"num_features": 2,
                          "nodes": [{"f": "zero", "y": 1}]}]}
  })";
  auto doc = JsonValue::Parse(bad_tree);
  ASSERT_TRUE(doc.ok());
  const std::string path = ::testing::TempDir() + "/treewm_badtypes.json";
  ASSERT_TRUE(WriteStringToFile(path, doc.value().Dump()).ok());
  auto loaded = LoadForest(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(DatasetJsonTest, RejectsCorruptNumbers) {
  // Labels out of int64 range (would be llround UB without the checked path).
  auto doc = JsonValue::Parse(
      R"({"num_features": 1, "rows": [[0.5]], "labels": [1e300]})");
  ASSERT_TRUE(doc.ok());
  auto parsed = DatasetFromJson(doc.value());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  // Negative feature count.
  doc = JsonValue::Parse(R"({"num_features": -3, "rows": [], "labels": []})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DatasetFromJson(doc.value()).ok());
  // Row value of the wrong type.
  doc = JsonValue::Parse(
      R"({"num_features": 1, "rows": [["x"]], "labels": [1]})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(DatasetFromJson(doc.value()).ok());
}

TEST(ForestIoTest, MissingFileIsIoError) {
  auto loaded = LoadForest(::testing::TempDir() + "/treewm_does_not_exist.json");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace treewm::io
