// Unit tests for DIMACS parsing and serialization.

#include "sat/dimacs.h"

#include <gtest/gtest.h>

#include "sat/solver.h"

namespace treewm::sat {
namespace {

TEST(DimacsParseTest, BasicFormula) {
  auto result = ParseDimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  ASSERT_TRUE(result.ok());
  const CnfFormula& f = result.value();
  EXPECT_EQ(f.num_vars, 3);
  ASSERT_EQ(f.clauses.size(), 2u);
  EXPECT_EQ(f.clauses[0][0], Lit::Make(0, false));
  EXPECT_EQ(f.clauses[0][1], Lit::Make(1, true));
  EXPECT_EQ(f.clauses[1][1], Lit::Make(2, false));
}

TEST(DimacsParseTest, MultipleClausesPerLine) {
  auto result = ParseDimacs("p cnf 2 2\n1 0 -2 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().clauses.size(), 2u);
}

TEST(DimacsParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDimacs("").ok());
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());                    // clause before header
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n3 0\n").ok());           // var out of range
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());           // missing terminator
  EXPECT_FALSE(ParseDimacs("p cnf 2 5\n1 0\n").ok());           // clause count wrong
  EXPECT_FALSE(ParseDimacs("p dnf 2 1\n1 0\n").ok());           // wrong format tag
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 x 0\n").ok());         // bad token
}

TEST(DimacsRoundTripTest, ToDimacsThenParse) {
  CnfFormula f;
  f.num_vars = 4;
  f.clauses = {{Lit::Make(0, false), Lit::Make(1, true)},
               {Lit::Make(2, false), Lit::Make(3, false), Lit::Make(0, true)}};
  auto parsed = ParseDimacs(ToDimacs(f));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_vars, f.num_vars);
  ASSERT_EQ(parsed.value().clauses.size(), f.clauses.size());
  for (size_t c = 0; c < f.clauses.size(); ++c) {
    EXPECT_EQ(parsed.value().clauses[c], f.clauses[c]);
  }
}

TEST(LoadIntoSolverTest, SolvesLoadedFormula) {
  auto f = ParseDimacs("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").MoveValue();
  Solver s;
  ASSERT_TRUE(LoadIntoSolver(f, &s));
  EXPECT_EQ(s.Solve(), SatResult::kSat);
  EXPECT_TRUE(s.ModelSatisfiesFormula(s.Model()));
}

TEST(LoadIntoSolverTest, DetectsTrivialUnsat) {
  auto f = ParseDimacs("p cnf 1 2\n1 0\n-1 0\n").MoveValue();
  Solver s;
  EXPECT_FALSE(LoadIntoSolver(f, &s));
}

}  // namespace
}  // namespace treewm::sat
