// Tests for the rate-limited logging helper behind TREEWM_LOG_EVERY_N.

#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"

namespace treewm {
namespace {

TEST(ShouldLogEveryNTest, FirstCallAlwaysLogs) {
  LogEveryNState state;
  uint64_t suppressed = 99;
  EXPECT_TRUE(ShouldLogEveryN(&state, 10, &suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST(ShouldLogEveryNTest, EveryNthCallLogsWithSuppressedCount) {
  LogEveryNState state;
  uint64_t suppressed = 0;
  int emitted = 0;
  for (int i = 0; i < 30; ++i) {
    if (ShouldLogEveryN(&state, 10, &suppressed)) {
      ++emitted;
      // After the first emission, each one accounts for the 9 swallowed.
      EXPECT_EQ(suppressed, emitted == 1 ? 0u : 9u);
    }
  }
  EXPECT_EQ(emitted, 3);  // calls 1, 11, 21
}

TEST(ShouldLogEveryNTest, NOfOneLogsEverything) {
  LogEveryNState state;
  uint64_t suppressed = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ShouldLogEveryN(&state, 1, &suppressed));
    EXPECT_EQ(suppressed, 0u);
  }
}

TEST(ShouldLogEveryNTest, ZeroNIsClampedToOne) {
  LogEveryNState state;
  uint64_t suppressed = 0;
  EXPECT_TRUE(ShouldLogEveryN(&state, 0, &suppressed));
  EXPECT_TRUE(ShouldLogEveryN(&state, 0, &suppressed));
}

TEST(ShouldLogEveryNTest, ConcurrentCallsEmitExactlyOncePerWindow) {
  // 4 threads x 250 calls = 1000 calls at n=100 -> exactly 10 emissions, no
  // matter how the threads interleave (the counter is one atomic).
  LogEveryNState state;
  std::atomic<int> emitted{0};
  ThreadPool hammer(4);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(hammer
                    .Submit([&state, &emitted] {
                      for (int i = 0; i < 250; ++i) {
                        uint64_t suppressed = 0;
                        if (ShouldLogEveryN(&state, 100, &suppressed)) ++emitted;
                      }
                    })
                    .ok());
  }
  hammer.Wait();
  EXPECT_EQ(emitted.load(), 10);
}

TEST(LogEveryNMacroTest, EvaluatesMessageOnlyWhenEmitting) {
  // The macro must not pay for (or side-effect through) message construction
  // on suppressed calls.
  SetLogLevel(LogLevel::kOff);  // suppress actual output, not the counting
  int evaluations = 0;
  auto make_message = [&evaluations] {
    ++evaluations;
    return std::string("costly");
  };
  for (int i = 0; i < 25; ++i) {
    TREEWM_LOG_EVERY_N(LogLevel::kWarning, 10, make_message());
  }
  EXPECT_EQ(evaluations, 3);  // calls 1, 11, 21
  SetLogLevel(LogLevel::kWarning);
}

TEST(LogEveryNMacroTest, DistinctCallSitesHaveIndependentCounters) {
  SetLogLevel(LogLevel::kOff);
  int a = 0, b = 0;
  for (int i = 0; i < 11; ++i) {
    TREEWM_LOG_EVERY_N(LogLevel::kWarning, 10, (++a, std::string("a")));
  }
  for (int i = 0; i < 11; ++i) {
    TREEWM_LOG_EVERY_N(LogLevel::kWarning, 10, (++b, std::string("b")));
  }
  EXPECT_EQ(a, 2);  // its own calls 1 and 11 — unaffected by site b
  EXPECT_EQ(b, 2);
  SetLogLevel(LogLevel::kWarning);
}

}  // namespace
}  // namespace treewm
