// Unit tests for string helpers.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace treewm {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
  EXPECT_EQ(StrFormat("%zu", static_cast<size_t>(42)), "42");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StrTrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StrTrim("  hi  "), "hi");
  EXPECT_EQ(StrTrim("\t\nx\r "), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("a b"), "a b");
}

TEST(StrStartsWithTest, Basics) {
  EXPECT_TRUE(StrStartsWith("hello", "he"));
  EXPECT_TRUE(StrStartsWith("hello", ""));
  EXPECT_FALSE(StrStartsWith("he", "hello"));
  EXPECT_FALSE(StrStartsWith("hello", "el"));
}

TEST(StrToLowerTest, AsciiOnly) {
  EXPECT_EQ(StrToLower("MiXeD-42"), "mixed-42");
}

TEST(ParseDoubleTest, AcceptsValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1e999", &v));  // overflow
}

TEST(ParseInt64Test, AcceptsValidIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("3.5", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
}

}  // namespace
}  // namespace treewm
