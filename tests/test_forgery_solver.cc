// Unit and property tests for the forgery decision procedure.

#include "smt/forgery_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/signature.h"
#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::smt {
namespace {

using tree::DecisionTree;
using tree::TreeNode;

/// The two-tree ensemble from the paper's Figure 1 (features 1-indexed in
/// the paper; 0-indexed here).
forest::RandomForest PaperFigure1Ensemble() {
  // t1 = N(x0<=5, N(x1<=3, +1, -1), N(x2<=7, -1, +1))
  auto t1 = DecisionTree::FromNodes(
                {TreeNode{0, 5.0f, 1, 2, 0}, TreeNode{1, 3.0f, 3, 4, 0},
                 TreeNode{2, 7.0f, 5, 6, 0}, TreeNode{-1, 0, -1, -1, +1},
                 TreeNode{-1, 0, -1, -1, -1}, TreeNode{-1, 0, -1, -1, -1},
                 TreeNode{-1, 0, -1, -1, +1}},
                3)
                .MoveValue();
  // t2 = N(x0<=2, N(x1<=4, +1, -1), N(x2<=6, -1, +1))
  auto t2 = DecisionTree::FromNodes(
                {TreeNode{0, 2.0f, 1, 2, 0}, TreeNode{1, 4.0f, 3, 4, 0},
                 TreeNode{2, 6.0f, 5, 6, 0}, TreeNode{-1, 0, -1, -1, +1},
                 TreeNode{-1, 0, -1, -1, -1}, TreeNode{-1, 0, -1, -1, -1},
                 TreeNode{-1, 0, -1, -1, +1}},
                3)
                .MoveValue();
  return forest::RandomForest::FromTrees({t1, t2}).MoveValue();
}

TEST(ForgerySolverTest, SolvesPaperExample) {
  // σ' = 01, label +1: t1 must output +1, t2 must output -1. The paper's
  // example solution is x = (4, 3, 5).
  auto ensemble = PaperFigure1Ensemble();
  ForgeryQuery query;
  query.signature_bits = {0, 1};
  query.target_label = +1;
  query.domain_lo = 0.0;
  query.domain_hi = 10.0;
  auto outcome = ForgerySolver::Solve(ensemble, query).MoveValue();
  ASSERT_EQ(outcome.result, sat::SatResult::kSat);
  EXPECT_TRUE(outcome.validated);
  EXPECT_TRUE(ForgerySolver::PatternHolds(ensemble, query.signature_bits, +1,
                                          outcome.witness));
  // The paper's hand solution must also satisfy the pattern.
  std::vector<float> paper_solution{4.0f, 3.0f, 5.0f};
  EXPECT_TRUE(ForgerySolver::PatternHolds(ensemble, query.signature_bits, +1,
                                          paper_solution));
}

TEST(ForgerySolverTest, DetectsUnsatDisjointRegions) {
  // Stump A: +1 iff x0 <= 0.3. Stump B: +1 iff x0 > 0.7. Both must be +1:
  // impossible.
  auto a = DecisionTree::FromNodes({TreeNode{0, 0.3f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, +1},
                                    TreeNode{-1, 0, -1, -1, -1}},
                                   1)
               .MoveValue();
  auto b = DecisionTree::FromNodes({TreeNode{0, 0.7f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, -1},
                                    TreeNode{-1, 0, -1, -1, +1}},
                                   1)
               .MoveValue();
  auto ensemble = forest::RandomForest::FromTrees({a, b}).MoveValue();
  ForgeryQuery query;
  query.signature_bits = {0, 0};
  query.target_label = +1;
  auto outcome = ForgerySolver::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(outcome.result, sat::SatResult::kUnsat);
  // Flipping B's bit makes it feasible again.
  query.signature_bits = {0, 1};
  outcome = ForgerySolver::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(outcome.result, sat::SatResult::kSat);
}

TEST(ForgerySolverTest, BallConstraintBinds) {
  auto ensemble = PaperFigure1Ensemble();
  ForgeryQuery query;
  query.signature_bits = {0, 1};
  query.target_label = +1;
  query.domain_lo = 0.0;
  query.domain_hi = 10.0;
  // Anchor at (9,9,9): σ'=01 needs x0>5, x2>7 for t1=+1 … and t2=-1 needs
  // x0>2, x2<=6 — conflicting with x2>7, so t1 must go left: x0<=5. A tight
  // ball around (9,9,9) therefore kills the query.
  query.anchor = {9.0f, 9.0f, 9.0f};
  query.epsilon = 0.5;
  auto tight = ForgerySolver::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(tight.result, sat::SatResult::kUnsat);
  // A huge ball admits the paper solution again.
  query.epsilon = 8.0;
  auto loose = ForgerySolver::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(loose.result, sat::SatResult::kSat);
  // Witness stays within the ball.
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_LE(std::fabs(loose.witness[f] - 9.0), 8.0 + 1e-6);
  }
}

TEST(ForgerySolverTest, EmptyBallDomainIntersectionIsUnsat) {
  auto ensemble = PaperFigure1Ensemble();
  ForgeryQuery query;
  query.signature_bits = {0, 1};
  query.target_label = +1;
  query.domain_lo = 0.0;
  query.domain_hi = 1.0;
  query.anchor = {5.0f, 5.0f, 5.0f};  // ball [4.9,5.1] misses domain [0,1]
  query.epsilon = 0.1;
  auto outcome = ForgerySolver::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(outcome.result, sat::SatResult::kUnsat);
}

TEST(ForgerySolverTest, NodeBudgetReturnsUnknown) {
  auto data = data::synthetic::MakeBlobs(5, 300, 6, 0.5);
  forest::ForestConfig config;
  config.num_trees = 12;
  config.seed = 9;
  auto model = forest::RandomForest::Fit(data, {}, config).MoveValue();
  Rng rng(4);
  auto sigma = core::Signature::Random(12, 0.5, &rng);
  ForgeryQuery query;
  query.signature_bits = sigma.bits();
  query.target_label = +1;
  query.max_nodes = 1;  // absurdly small
  auto outcome = ForgerySolver::Solve(model, query).MoveValue();
  EXPECT_NE(outcome.result, sat::SatResult::kSat);
}

TEST(ForgerySolverTest, ValidatesQueryShape) {
  auto ensemble = PaperFigure1Ensemble();
  ForgeryQuery query;
  query.signature_bits = {0, 1};
  query.target_label = +1;
  query.anchor = {0.5f};  // wrong dimensionality
  EXPECT_FALSE(ForgerySolver::Solve(ensemble, query).ok());
  query.anchor.clear();
  query.epsilon = -0.1;
  EXPECT_FALSE(ForgerySolver::Solve(ensemble, query).ok());
}

TEST(PatternHoldsTest, ChecksEveryTree) {
  auto ensemble = PaperFigure1Ensemble();
  std::vector<float> x{4.0f, 3.0f, 5.0f};  // t1=+1, t2=-1
  EXPECT_TRUE(ForgerySolver::PatternHolds(ensemble, {0, 1}, +1, x));
  EXPECT_FALSE(ForgerySolver::PatternHolds(ensemble, {0, 0}, +1, x));
  EXPECT_FALSE(ForgerySolver::PatternHolds(ensemble, {1, 1}, +1, x));
  EXPECT_TRUE(ForgerySolver::PatternHolds(ensemble, {1, 0}, -1, x));  // mirrored
  EXPECT_FALSE(ForgerySolver::PatternHolds(ensemble, {1}, +1, x));  // bad length
  EXPECT_FALSE(
      ForgerySolver::PatternHolds(ensemble, {0, 1}, +1, {x.data(), 2}));  // bad d
}

TEST(PatternHoldsBatchTest, ValidatesRowBlocksLikeTheScalarCheck) {
  auto ensemble = PaperFigure1Ensemble();
  data::Dataset witnesses(3);
  ASSERT_TRUE(witnesses.AddRow(std::vector<float>{4.0f, 3.0f, 5.0f}, +1).ok());
  ASSERT_TRUE(witnesses.AddRow(std::vector<float>{9.0f, 9.0f, 9.0f}, +1).ok());
  ASSERT_TRUE(witnesses.AddRow(std::vector<float>{1.0f, 1.0f, 1.0f}, +1).ok());
  const std::vector<uint8_t> holds =
      ForgerySolver::PatternHoldsBatch(ensemble, {0, 1}, +1, witnesses);
  ASSERT_EQ(holds.size(), witnesses.num_rows());
  for (size_t i = 0; i < witnesses.num_rows(); ++i) {
    EXPECT_EQ(holds[i] != 0,
              ForgerySolver::PatternHolds(ensemble, {0, 1}, +1, witnesses.Row(i)))
        << "row " << i;
  }
  EXPECT_EQ(holds[0], 1);  // the paper's hand solution

  // Shape mismatches fail every row instead of reading out of bounds.
  const auto bad_sig =
      ForgerySolver::PatternHoldsBatch(ensemble, {0}, +1, witnesses);
  EXPECT_EQ(bad_sig, std::vector<uint8_t>(witnesses.num_rows(), 0));
  data::Dataset bad_features(2);
  ASSERT_TRUE(bad_features.AddRow(std::vector<float>{4.0f, 3.0f}, +1).ok());
  const auto bad_d =
      ForgerySolver::PatternHoldsBatch(ensemble, {0, 1}, +1, bad_features);
  EXPECT_EQ(bad_d, std::vector<uint8_t>{0});

  data::Dataset empty(3);
  EXPECT_TRUE(
      ForgerySolver::PatternHoldsBatch(ensemble, {0, 1}, +1, empty).empty());
}

TEST(PatternHoldsBatchTest, AgreesWithScalarOnTrainedModelSweep) {
  auto data = data::synthetic::MakeBlobs(23, 200, 5, 1.0);
  forest::ForestConfig config;
  config.num_trees = 9;
  config.seed = 6;
  auto model = forest::RandomForest::Fit(data, {}, config).MoveValue();
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    auto fake = core::Signature::Random(9, 0.5, &rng);
    const int label = trial % 2 == 0 ? +1 : -1;
    const std::vector<uint8_t> holds =
        ForgerySolver::PatternHoldsBatch(model, fake.bits(), label, data);
    ASSERT_EQ(holds.size(), data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) {
      ASSERT_EQ(holds[i] != 0, ForgerySolver::PatternHolds(model, fake.bits(),
                                                           label, data.Row(i)))
          << "trial " << trial << " row " << i;
    }
  }
}

/// Property sweep on trained models: whenever the solver reports SAT the
/// witness must satisfy the pattern and the ball constraint; the outcome is
/// deterministic across repeat runs.
class ForgerySweep : public ::testing::TestWithParam<double> {};

TEST_P(ForgerySweep, WitnessesAreSoundAndDeterministic) {
  const double epsilon = GetParam();
  auto data = data::synthetic::MakeBlobs(17, 400, 5, 1.5);
  forest::ForestConfig config;
  config.num_trees = 10;
  config.seed = 2;
  auto model = forest::RandomForest::Fit(data, {}, config).MoveValue();
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    auto fake = core::Signature::Random(10, 0.5, &rng);
    ForgeryQuery query;
    query.signature_bits = fake.bits();
    query.target_label = trial % 2 == 0 ? +1 : -1;
    const size_t row = rng.UniformInt(data.num_rows());
    query.anchor.assign(data.Row(row).begin(), data.Row(row).end());
    query.epsilon = epsilon;
    query.max_nodes = 100000;

    auto first = ForgerySolver::Solve(model, query).MoveValue();
    auto second = ForgerySolver::Solve(model, query).MoveValue();
    EXPECT_EQ(first.result, second.result);
    EXPECT_EQ(first.nodes_explored, second.nodes_explored);
    if (first.result == sat::SatResult::kSat) {
      EXPECT_TRUE(ForgerySolver::PatternHolds(model, query.signature_bits,
                                              query.target_label, first.witness));
      for (size_t f = 0; f < first.witness.size(); ++f) {
        EXPECT_LE(std::fabs(first.witness[f] - query.anchor[f]), epsilon + 1e-6);
        EXPECT_GE(first.witness[f], 0.0f);
        EXPECT_LE(first.witness[f], 1.0f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ForgerySweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.9));

}  // namespace
}  // namespace treewm::smt
