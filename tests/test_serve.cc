// Tests for the fault-tolerant serving front-end: admission queue
// backpressure, batcher coalescing, deadline handling at all three
// checkpoints, load shedding + graceful degradation, drain-on-shutdown, and
// the determinism-under-faults property the whole subsystem exists to keep.

#include "serve/serving_front_end.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "predict/flat_ensemble.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"

namespace treewm::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

QueuedRequest MakeRequest(uint64_t id,
                          nanoseconds admitted_at = nanoseconds{0},
                          nanoseconds deadline = kNoDeadline) {
  QueuedRequest r;
  r.id = id;
  r.admitted_at = admitted_at;
  r.deadline = deadline;
  r.promise = std::make_shared<std::promise<Result<PredictResult>>>();
  return r;
}

forest::RandomForest TrainForest(uint64_t seed, size_t num_trees = 9,
                                 size_t rows = 300, size_t features = 6) {
  auto d = data::synthetic::MakeBlobs(seed, rows, features, 1.5);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  return forest::RandomForest::Fit(d, {}, config).MoveValue();
}

std::shared_ptr<const predict::FlatEnsemble> FlatOf(
    const forest::RandomForest& forest) {
  return std::make_shared<predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueueTest, FifoOrderAndStats) {
  FakeClock clock;
  AdmissionQueueOptions options;
  options.capacity = 4;
  options.clock = &clock;
  AdmissionQueue queue(options);
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(queue.Push(MakeRequest(id)).ok());
  }
  EXPECT_EQ(queue.depth(), 3u);
  QueuedRequest out;
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out.id, id);
  }
  EXPECT_FALSE(queue.TryPop(&out));
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_EQ(stats.high_water, 3u);
}

TEST(AdmissionQueueTest, RejectPolicyFailsFastAtCapacity) {
  FakeClock clock;
  AdmissionQueueOptions options;
  options.capacity = 2;
  options.policy = OverflowPolicy::kReject;
  options.clock = &clock;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Push(MakeRequest(1)).ok());
  ASSERT_TRUE(queue.Push(MakeRequest(2)).ok());
  Status st = queue.Push(MakeRequest(3));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().rejected_full, 1u);
  // Space frees -> admission works again.
  QueuedRequest out;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_TRUE(queue.Push(MakeRequest(4)).ok());
}

TEST(AdmissionQueueTest, ShedHighWaterOutranksOverflowPolicy) {
  FakeClock clock;
  AdmissionQueueOptions options;
  options.capacity = 8;
  options.policy = OverflowPolicy::kBlockWithDeadline;  // would block if full
  options.shed_high_water = 2;
  options.clock = &clock;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Push(MakeRequest(1)).ok());
  ASSERT_TRUE(queue.Push(MakeRequest(2)).ok());
  // At the shed mark: rejected immediately even though capacity remains and
  // the policy would otherwise block.
  Status st = queue.Push(MakeRequest(3));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().rejected_shed, 1u);
  EXPECT_EQ(queue.stats().rejected_full, 0u);
}

TEST(AdmissionQueueTest, ShutdownClosesAdmissionButDrains) {
  FakeClock clock;
  AdmissionQueueOptions options;
  options.capacity = 4;
  options.clock = &clock;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Push(MakeRequest(1)).ok());
  ASSERT_TRUE(queue.Push(MakeRequest(2)).ok());
  queue.Shutdown();
  EXPECT_TRUE(queue.IsShutdown());
  Status st = queue.Push(MakeRequest(3));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.stats().rejected_shutdown, 1u);
  // Queued items are still drained in order.
  QueuedRequest out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, 1u);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, 2u);
  EXPECT_FALSE(queue.Pop(&out));  // drained: consumer can stop
}

TEST(AdmissionQueueTest, BlockingPushTimesOutAtRequestDeadline) {
  // Blocking paths park on real condition variables: system clock.
  AdmissionQueueOptions options;
  options.capacity = 1;
  options.policy = OverflowPolicy::kBlockWithDeadline;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Push(MakeRequest(1)).ok());
  const auto deadline = Clock::System()->Now() + nanoseconds(milliseconds(30));
  const auto start = std::chrono::steady_clock::now();
  Status st = queue.Push(MakeRequest(2, nanoseconds{0}, deadline));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(waited, milliseconds(20));
  EXPECT_EQ(queue.stats().expired_blocking, 1u);
}

TEST(AdmissionQueueTest, BlockingPushUnblocksWhenConsumerFreesSpace) {
  AdmissionQueueOptions options;
  options.capacity = 1;
  options.policy = OverflowPolicy::kBlockWithDeadline;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Push(MakeRequest(1)).ok());
  // lint ok: blocking Push parks on a real CV; only a raw racing thread +
  // real sleep can free space mid-wait (no FakeClock path through a parked CV)
  std::thread consumer([&queue] {
    std::this_thread::sleep_for(milliseconds(10));  // lint ok: see above
    QueuedRequest out;
    ASSERT_TRUE(queue.TryPop(&out));
  });
  const auto deadline = Clock::System()->Now() + nanoseconds(std::chrono::seconds(10));
  Status st = queue.Push(MakeRequest(2, nanoseconds{0}, deadline));
  consumer.join();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionQueueTest, PopUntilGivesUpAtTheGivenTime) {
  AdmissionQueueOptions options;
  AdmissionQueue queue(options);
  QueuedRequest out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      queue.PopUntil(&out, Clock::System()->Now() + nanoseconds(milliseconds(20))));
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(10));
}

TEST(AdmissionQueueTest, PopWakesOnShutdown) {
  AdmissionQueueOptions options;
  AdmissionQueue queue(options);
  // lint ok: Shutdown must interrupt a Pop parked on a real CV — needs a raw
  // racing thread and a real delay, not FakeClock
  std::thread closer([&queue] {
    std::this_thread::sleep_for(milliseconds(5));  // lint ok: see above
    queue.Shutdown();
  });
  QueuedRequest out;
  EXPECT_FALSE(queue.Pop(&out));  // woke without an item: shutdown + drained
  closer.join();
}

TEST(AdmissionQueueTest, InjectedFullFaultRejectsRegardlessOfDepth) {
  FakeClock clock;
  AdmissionQueueOptions options;
  options.capacity = 100;
  options.clock = &clock;
  AdmissionQueue queue(options);
  FaultSpec spec;
  spec.max_fires = 1;
  ScopedFault fault("serve.admission.full", spec);
  Status st = queue.Push(MakeRequest(1));  // queue is empty, fault forces full
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().rejected_full, 1u);
  EXPECT_TRUE(queue.Push(MakeRequest(2)).ok());  // max_fires spent
}

// ---------------------------------------------------------------------------
// Batcher

TEST(BatcherTest, SizeTriggerFiresRegardlessOfClock) {
  BatcherOptions options;
  options.max_batch_rows = 3;
  options.max_batch_delay = std::chrono::hours(1);
  Batcher batcher(options);
  batcher.Add(MakeRequest(1));
  batcher.Add(MakeRequest(2));
  EXPECT_FALSE(batcher.ShouldFlush(nanoseconds{0}));
  batcher.Add(MakeRequest(3));
  EXPECT_TRUE(batcher.ShouldFlush(nanoseconds{0}));
}

TEST(BatcherTest, DelayTriggerCountsFromOldestAdmission) {
  BatcherOptions options;
  options.max_batch_rows = 100;
  options.max_batch_delay = microseconds(500);
  Batcher batcher(options);
  const nanoseconds t0{1000};
  batcher.Add(MakeRequest(1, t0));
  batcher.Add(MakeRequest(2, t0 + microseconds(400)));  // newer: irrelevant
  EXPECT_EQ(batcher.NextFlushAt(), t0 + microseconds(500));
  EXPECT_FALSE(batcher.ShouldFlush(t0 + microseconds(499)));
  EXPECT_TRUE(batcher.ShouldFlush(t0 + microseconds(500)));
}

TEST(BatcherTest, TakeBatchIsFifoAndBounded) {
  BatcherOptions options;
  options.max_batch_rows = 2;
  Batcher batcher(options);
  for (uint64_t id = 1; id <= 5; ++id) batcher.Add(MakeRequest(id));
  auto batch = batcher.TakeBatch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(batcher.pending(), 3u);
}

TEST(BatcherTest, DelayOverrideCollapsesAndRestores) {
  BatcherOptions options;
  options.max_batch_rows = 100;
  options.max_batch_delay = std::chrono::hours(1);
  Batcher batcher(options);
  batcher.Add(MakeRequest(1, nanoseconds{1000}));
  EXPECT_FALSE(batcher.ShouldFlush(nanoseconds{2000}));
  batcher.set_delay_override(nanoseconds{0});
  EXPECT_EQ(batcher.effective_delay(), nanoseconds{0});
  EXPECT_TRUE(batcher.ShouldFlush(nanoseconds{2000}));  // degraded: due now
  batcher.set_delay_override(std::nullopt);
  EXPECT_FALSE(batcher.ShouldFlush(nanoseconds{2000}));
}

TEST(BatcherTest, EmptyBatcherIsNeverDue) {
  Batcher batcher(BatcherOptions{});
  EXPECT_FALSE(batcher.ShouldFlush(nanoseconds::max()));
  EXPECT_EQ(batcher.NextFlushAt(), kNoDeadline);
  EXPECT_TRUE(batcher.TakeBatch().empty());
}

// ---------------------------------------------------------------------------
// ServingFrontEnd

class ServingFrontEndTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Reset(); }

  std::unique_ptr<ServingFrontEnd> MakeManualFrontEnd(
      const forest::RandomForest& forest, FakeClock* clock,
      ServingOptions options = {}) {
    options.clock = clock;
    options.start_dispatcher = false;
    auto created = ServingFrontEnd::Create(FlatOf(forest), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return created.MoveValue();
  }
};

TEST_F(ServingFrontEndTest, CreateValidatesInputs) {
  auto forest = TrainForest(1);
  EXPECT_FALSE(ServingFrontEnd::Create(nullptr, {}).ok());
  ServingOptions bad;
  bad.queue.capacity = 4;
  bad.queue.shed_high_water = 8;
  EXPECT_FALSE(ServingFrontEnd::Create(FlatOf(forest), bad).ok());
}

TEST_F(ServingFrontEndTest, ResultsMatchScalarReference) {
  auto forest = TrainForest(2);
  FakeClock clock;
  auto serving = MakeManualFrontEnd(forest, &clock);
  auto trace = data::synthetic::MakeBlobs(3, 40, 6, 1.5);
  std::vector<std::future<Result<PredictResult>>> futures;
  for (size_t i = 0; i < trace.num_rows(); ++i) {
    futures.push_back(serving->SubmitPredict(trace.Row(i)));
  }
  serving->Pump(/*force_flush=*/true);
  for (size_t i = 0; i < trace.num_rows(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().label, forest.Predict(trace.Row(i)));
    const std::vector<int> expected_votes = forest.PredictAll(trace.Row(i));
    ASSERT_EQ(result.value().votes.size(), expected_votes.size());
    for (size_t t = 0; t < expected_votes.size(); ++t) {
      EXPECT_EQ(static_cast<int>(result.value().votes[t]), expected_votes[t]);
    }
  }
  const auto stats = serving->stats();
  EXPECT_EQ(stats.submitted, trace.num_rows());
  EXPECT_EQ(stats.completed_ok, trace.num_rows());
}

TEST_F(ServingFrontEndTest, WrongFeatureCountFailsImmediately) {
  auto forest = TrainForest(4);
  FakeClock clock;
  auto serving = MakeManualFrontEnd(forest, &clock);
  const std::vector<float> short_row(2, 0.0f);
  auto future = serving->SubmitPredict(short_row);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto result = future.get();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(serving->stats().rejected_invalid, 1u);
}

TEST_F(ServingFrontEndTest, DeadlineExpiredWaitingIsAnsweredAtDispatch) {
  auto forest = TrainForest(5);
  FakeClock clock;
  auto serving = MakeManualFrontEnd(forest, &clock);
  const std::vector<float> row(6, 0.0f);
  RequestOptions with_deadline;
  with_deadline.timeout = milliseconds(1);
  auto late = serving->SubmitPredict(row, with_deadline);
  auto unconstrained = serving->SubmitPredict(row);
  clock.Advance(milliseconds(5));  // the request dies in the queue
  serving->Pump(/*force_flush=*/true);
  EXPECT_EQ(late.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(unconstrained.get().ok());
  const auto stats = serving->stats();
  EXPECT_EQ(stats.expired_dispatch, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  // The expired request never reached the predictor.
  EXPECT_EQ(stats.batched_rows, 1u);
}

TEST_F(ServingFrontEndTest, DeadlineExpiredDuringComputeFailsClosed) {
  // Completion-deadline path: a stall injected between batch formation and
  // the predictor call makes real time pass mid-batch.
  auto forest = TrainForest(6);
  ServingOptions options;
  options.start_dispatcher = false;  // manual mode on the system clock
  auto created = ServingFrontEnd::Create(FlatOf(forest), options);
  ASSERT_TRUE(created.ok());
  auto serving = created.MoveValue();
  FaultSpec spec;
  spec.stall = milliseconds(60);
  spec.max_fires = 1;
  ScopedFault fault("serve.batch.stall", spec);
  const std::vector<float> row(6, 0.0f);
  RequestOptions with_deadline;
  with_deadline.timeout = milliseconds(25);
  auto future = serving->SubmitPredict(row, with_deadline);
  serving->Pump(/*force_flush=*/true);  // dispatch well within the deadline
  EXPECT_EQ(future.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(serving->stats().expired_completion, 1u);
}

TEST_F(ServingFrontEndTest, ShedsPastHighWaterAndDegradesBatching) {
  auto forest = TrainForest(7);
  FakeClock clock;
  ServingOptions options;
  options.queue.capacity = 8;
  options.queue.shed_high_water = 4;
  options.batch.max_batch_rows = 2;
  options.batch.max_batch_delay = std::chrono::hours(1);  // only degradation flushes
  auto serving = MakeManualFrontEnd(forest, &clock, options);
  const std::vector<float> row(6, 0.5f);
  std::vector<std::future<Result<PredictResult>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(serving->SubmitPredict(row));
  // 4 admitted, 2 shed.
  size_t shed = 0;
  for (int i = 4; i < 6; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(futures[i].get().status().code(), StatusCode::kResourceExhausted);
    ++shed;
  }
  EXPECT_EQ(shed, 2u);
  // Depth (4) >= degrade_depth (defaults to shed_high_water): the pump must
  // collapse the huge configured delay and flush everything now.
  serving->Pump();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(futures[i].get().ok());
  const auto stats = serving->stats();
  EXPECT_EQ(stats.rejected_shed, 2u);
  EXPECT_EQ(stats.completed_ok, 4u);
  EXPECT_GT(stats.degraded_flushes, 0u);
  EXPECT_EQ(stats.max_batch_rows, 2u);  // degraded but still batch-bounded
}

TEST_F(ServingFrontEndTest, ShutdownDrainsEveryAcceptedRequest) {
  auto forest = TrainForest(8);
  FakeClock clock;
  auto serving = MakeManualFrontEnd(forest, &clock);
  const std::vector<float> row(6, -0.25f);
  std::vector<std::future<Result<PredictResult>>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(serving->SubmitPredict(row));
  serving->Shutdown();  // no Pump ran: shutdown itself must answer them
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  // Admission is closed now.
  auto rejected = serving->SubmitPredict(row);
  EXPECT_EQ(rejected.get().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(serving->stats().rejected_shutdown, 1u);
}

TEST_F(ServingFrontEndTest, BackgroundDispatcherServesConcurrentClients) {
  auto forest = TrainForest(9);
  ServingOptions options;
  options.batch.max_batch_rows = 16;
  options.batch.max_batch_delay = microseconds(200);
  auto created = ServingFrontEnd::Create(FlatOf(forest), options);
  ASSERT_TRUE(created.ok());
  auto serving = created.MoveValue();
  auto trace = data::synthetic::MakeBlobs(10, 200, 6, 1.5);
  std::vector<Result<PredictResult>> results(trace.num_rows(),
                                             Status::Internal("unset"));
  const size_t kClients = 4;
  ThreadPool clients(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_TRUE(clients
                    .Submit([&, c] {
                      for (size_t i = c; i < trace.num_rows(); i += kClients) {
                        results[i] = serving->Predict(trace.Row(i));
                      }
                    })
                    .ok());
  }
  clients.Wait();
  serving->Shutdown();
  for (size_t i = 0; i < trace.num_rows(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i].value().label, forest.Predict(trace.Row(i)));
  }
  const auto stats = serving->stats();
  EXPECT_EQ(stats.submitted, trace.num_rows());
  EXPECT_EQ(stats.completed_ok, trace.num_rows());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_rows, trace.num_rows());
}

// ---------------------------------------------------------------------------
// The determinism-under-faults property: for a fixed request trace, every
// completed request's result is bit-identical to the scalar reference across
// thread counts x batch shapes x fault schedules, and every refused request
// fails closed with a typed Status. This is the contract that makes a served
// verification verdict reproducible evidence.

TEST(ServeDeterminismTest, CompletedResultsBitIdenticalAcrossConfigs) {
  auto forest = TrainForest(42, 9, 300, 6);
  auto trace = data::synthetic::MakeBlobs(43, 120, 6, 1.5);

  // Scalar reference, computed once.
  std::vector<int> expected_labels(trace.num_rows());
  std::vector<std::vector<int>> expected_votes(trace.num_rows());
  for (size_t i = 0; i < trace.num_rows(); ++i) {
    expected_labels[i] = forest.Predict(trace.Row(i));
    expected_votes[i] = forest.PredictAll(trace.Row(i));
  }

  enum class Schedule { kNone, kWorkerStall, kQueueFull };
  const size_t thread_counts[] = {1, 2, 5};
  const size_t batch_sizes[] = {1, 16, 64};
  const Schedule schedules[] = {Schedule::kNone, Schedule::kWorkerStall,
                                Schedule::kQueueFull};

  for (size_t threads : thread_counts) {
    for (size_t batch : batch_sizes) {
      for (Schedule schedule : schedules) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " batch=" + std::to_string(batch) +
                     " schedule=" + std::to_string(static_cast<int>(schedule)));
        FaultInjection::Reset();
        if (schedule == Schedule::kWorkerStall) {
          FaultSpec spec;
          spec.probability = 0.2;
          spec.stall = microseconds(200);
          spec.seed = 7;
          FaultInjection::Arm("thread_pool.worker.stall", spec);
        } else if (schedule == Schedule::kQueueFull) {
          FaultSpec spec;
          spec.probability = 0.3;
          spec.seed = 99;
          FaultInjection::Arm("serve.admission.full", spec);
        }

        ServingOptions options;
        options.queue.capacity = 256;
        options.batch.max_batch_rows = batch;
        options.batch.max_batch_delay = microseconds(100);
        options.predictor.num_threads = threads;
        auto created = ServingFrontEnd::Create(FlatOf(forest), options);
        ASSERT_TRUE(created.ok());
        auto serving = created.MoveValue();

        std::vector<std::future<Result<PredictResult>>> futures;
        for (size_t i = 0; i < trace.num_rows(); ++i) {
          futures.push_back(serving->SubmitPredict(trace.Row(i)));
        }
        size_t completed = 0, refused = 0;
        for (size_t i = 0; i < trace.num_rows(); ++i) {
          auto result = futures[i].get();
          if (result.ok()) {
            ++completed;
            // Bit-identical to the scalar reference, independent of config.
            EXPECT_EQ(result.value().label, expected_labels[i]);
            ASSERT_EQ(result.value().votes.size(), expected_votes[i].size());
            for (size_t t = 0; t < expected_votes[i].size(); ++t) {
              EXPECT_EQ(static_cast<int>(result.value().votes[t]),
                        expected_votes[i][t]);
            }
          } else {
            ++refused;
            // Fail closed: refusals carry a typed, retryable-or-not Status.
            EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
          }
        }
        serving->Shutdown();
        FaultInjection::Reset();

        if (schedule == Schedule::kQueueFull) {
          EXPECT_GT(refused, 0u);  // the fault really fired
        } else {
          EXPECT_EQ(refused, 0u);  // nothing else may refuse
        }
        const auto stats = serving->stats();
        EXPECT_EQ(stats.submitted, trace.num_rows());
        EXPECT_EQ(stats.completed_ok, completed);
        EXPECT_EQ(stats.admitted, completed);
        EXPECT_EQ(stats.rejected_full, refused);
        EXPECT_EQ(stats.batched_rows, completed);
      }
    }
  }
}

}  // namespace
}  // namespace treewm::serve
