// Unit tests for Status / Result and the propagation macros.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace treewm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Timeout("").code(), StatusCode::kTimeout);
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared state
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "timeout");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r((Status()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string moved = r.MoveValue();
  EXPECT_EQ(moved.size(), 1000u);
}

namespace helpers {

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  TREEWM_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TREEWM_ASSIGN_OR_RETURN(int half, Half(x));
  TREEWM_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Caller(1).ok());
  EXPECT_EQ(helpers::Caller(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnChains) {
  Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(helpers::Quarter(6).ok());  // fails at the second step
  EXPECT_FALSE(helpers::Quarter(3).ok());  // fails at the first step
}

}  // namespace
}  // namespace treewm
