// Unit tests for the Dataset container.

#include "data/dataset.h"

#include <gtest/gtest.h>

namespace treewm::data {
namespace {

Dataset MakeToy() {
  Dataset d(2);
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.1f, 0.2f}, kPositive).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.3f, 0.4f}, kNegative).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.5f, 0.6f}, kPositive).ok());
  return d;
}

TEST(DatasetTest, AddRowAndAccessors) {
  Dataset d = MakeToy();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_FLOAT_EQ(d.At(1, 0), 0.3f);
  EXPECT_FLOAT_EQ(d.At(2, 1), 0.6f);
  EXPECT_EQ(d.Label(0), kPositive);
  EXPECT_EQ(d.Label(1), kNegative);
  auto row = d.Row(1);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_FLOAT_EQ(row[1], 0.4f);
}

TEST(DatasetTest, AddRowRejectsBadShapes) {
  Dataset d(3);
  EXPECT_FALSE(d.AddRow(std::vector<float>{1.0f}, kPositive).ok());
  EXPECT_FALSE(d.AddRow(std::vector<float>{1, 2, 3, 4}, kPositive).ok());
}

TEST(DatasetTest, AddRowRejectsBadLabels) {
  Dataset d(1);
  EXPECT_FALSE(d.AddRow(std::vector<float>{1.0f}, 0).ok());
  EXPECT_FALSE(d.AddRow(std::vector<float>{1.0f}, 2).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{1.0f}, -1).ok());
}

TEST(DatasetTest, ClassCounts) {
  Dataset d = MakeToy();
  EXPECT_EQ(d.NumPositive(), 2u);
  EXPECT_NEAR(d.PositiveFraction(), 2.0 / 3.0, 1e-12);
  Dataset empty(2);
  EXPECT_DOUBLE_EQ(empty.PositiveFraction(), 0.0);
}

TEST(DatasetTest, SetLabelOverwrites) {
  Dataset d = MakeToy();
  d.SetLabel(0, kNegative);
  EXPECT_EQ(d.Label(0), kNegative);
  EXPECT_EQ(d.NumPositive(), 1u);
}

TEST(DatasetTest, SubsetSelectsRowsInOrder) {
  Dataset d = MakeToy();
  Dataset sub = d.Subset({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_FLOAT_EQ(sub.At(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(sub.At(1, 0), 0.1f);
  EXPECT_EQ(sub.Label(0), kPositive);
}

TEST(DatasetTest, SubsetAllowsRepeats) {
  Dataset d = MakeToy();
  Dataset sub = d.Subset({1, 1, 1});
  EXPECT_EQ(sub.num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(sub.At(i, 1), 0.4f);
}

TEST(DatasetTest, ConcatAppendsRows) {
  Dataset a = MakeToy();
  Dataset b = MakeToy();
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.num_rows(), 6u);
  EXPECT_FLOAT_EQ(a.At(3, 0), 0.1f);
}

TEST(DatasetTest, ConcatRejectsShapeMismatch) {
  Dataset a(2);
  Dataset b(3);
  EXPECT_FALSE(a.Concat(b).ok());
}

TEST(DatasetTest, WithFlippedLabelsNegatesEverything) {
  Dataset d = MakeToy();
  Dataset flipped = d.WithFlippedLabels();
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(flipped.Label(i), -d.Label(i));
    EXPECT_FLOAT_EQ(flipped.At(i, 0), d.At(i, 0));  // features untouched
  }
}

TEST(DatasetTest, FeatureMinMax) {
  Dataset d = MakeToy();
  EXPECT_FLOAT_EQ(d.FeatureMin(0), 0.1f);
  EXPECT_FLOAT_EQ(d.FeatureMax(0), 0.5f);
  EXPECT_FLOAT_EQ(d.FeatureMin(1), 0.2f);
  EXPECT_FLOAT_EQ(d.FeatureMax(1), 0.6f);
}

TEST(DatasetTest, AllValuesWithin) {
  Dataset d = MakeToy();
  EXPECT_TRUE(d.AllValuesWithin(0.0f, 1.0f));
  EXPECT_FALSE(d.AllValuesWithin(0.0f, 0.5f));
  EXPECT_FALSE(d.AllValuesWithin(0.2f, 1.0f));
}

TEST(DatasetTest, AppendBlockMatchesRowByRowAppend) {
  Dataset block_built(2);
  const std::vector<float> values{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f};
  const std::vector<int8_t> labels{+1, -1, +1};
  ASSERT_TRUE(block_built.AppendBlock(values, labels).ok());

  Dataset row_built = MakeToy();
  ASSERT_EQ(block_built.num_rows(), row_built.num_rows());
  EXPECT_EQ(block_built.values(), row_built.values());
  EXPECT_EQ(block_built.labels(), row_built.labels());

  // Appending to a non-empty dataset extends it.
  ASSERT_TRUE(block_built.AppendBlock(values, labels).ok());
  EXPECT_EQ(block_built.num_rows(), 6u);
  EXPECT_FLOAT_EQ(block_built.At(4, 1), 0.4f);
}

TEST(DatasetTest, AppendBlockRejectsBadShapesAndLabels) {
  Dataset d(2);
  // Value count not a multiple of rows × features.
  EXPECT_FALSE(
      d.AppendBlock(std::vector<float>{1, 2, 3}, std::vector<int8_t>{+1}).ok());
  // Bad label inside the block.
  EXPECT_FALSE(
      d.AppendBlock(std::vector<float>{1, 2}, std::vector<int8_t>{0}).ok());
  // Nothing was committed by the failed calls.
  EXPECT_EQ(d.num_rows(), 0u);
  EXPECT_TRUE(d.values().empty());
  // Zero-feature datasets cannot take blocks.
  Dataset empty_schema(0);
  EXPECT_FALSE(empty_schema.AppendBlock({}, std::vector<int8_t>{+1}).ok());
}

TEST(DatasetTest, NamePropagatesThroughSubset) {
  Dataset d = MakeToy();
  d.set_name("toy");
  EXPECT_EQ(d.Subset({0}).name(), "toy");
}

}  // namespace
}  // namespace treewm::data
