// Unit tests for streaming statistics.

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace treewm {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 0.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_DOUBLE_EQ(s.PopulationStdDev(), 2.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  Rng rng(5);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    values.push_back(v);
    s.Add(v);
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(s.Mean(), mean, 1e-9);
  EXPECT_NEAR(s.PopulationVariance(), ss / static_cast<double>(values.size()), 1e-9);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.Mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.PopulationVariance(), 0.25, 1e-6);
}

TEST(BatchStatsTest, MeanAndStdDevHelpers) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_NEAR(PopulationStdDev(values), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({}), 0.0);
}

TEST(AgreementFractionTest, Basics) {
  EXPECT_DOUBLE_EQ(AgreementFraction({1, -1, 1}, {1, -1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(AgreementFraction({1, -1, 1, -1}, {1, 1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AgreementFraction({}, {}), 0.0);
}

}  // namespace
}  // namespace treewm
