// Tests for the synthetic dataset generators (the paper-dataset stand-ins).

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "data/sampling.h"
#include "forest/random_forest.h"

namespace treewm::data::synthetic {
namespace {

TEST(Mnist26LikeTest, ShapeAndDistributionMatchTable1) {
  Dataset d = MakeMnist26Like(1, 500);
  EXPECT_EQ(d.num_features(), 784u);
  EXPECT_EQ(d.num_rows(), 500u);
  EXPECT_NEAR(d.PositiveFraction(), 0.51, 0.01);
  EXPECT_TRUE(d.AllValuesWithin(0.0f, 1.0f));
  EXPECT_EQ(d.name(), "mnist2-6-like");
}

TEST(Mnist26LikeTest, DefaultSizeIsPaperSize) {
  // Only check the constant, not a 13k-row generation (kept fast).
  EXPECT_EQ(kMnist26Rows, 13866u);
}

TEST(Mnist26LikeTest, DeterministicInSeed) {
  Dataset a = MakeMnist26Like(7, 50);
  Dataset b = MakeMnist26Like(7, 50);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.labels(), b.labels());
  Dataset c = MakeMnist26Like(8, 50);
  EXPECT_NE(a.values(), c.values());
}

TEST(BreastCancerLikeTest, ShapeAndDistributionMatchTable1) {
  Dataset d = MakeBreastCancerLike(2);
  EXPECT_EQ(d.num_features(), 30u);
  EXPECT_EQ(d.num_rows(), kBreastCancerRows);
  EXPECT_EQ(d.num_rows(), 569u);
  EXPECT_NEAR(d.PositiveFraction(), 0.63, 0.01);
  EXPECT_TRUE(d.AllValuesWithin(0.0f, 1.0f));
}

TEST(Ijcnn1LikeTest, ShapeAndDistributionMatchTable1) {
  Dataset d = MakeIjcnn1Like(3, 2000);
  EXPECT_EQ(d.num_features(), 22u);
  EXPECT_EQ(d.num_rows(), 2000u);
  EXPECT_NEAR(d.PositiveFraction(), 0.10, 0.01);
  EXPECT_TRUE(d.AllValuesWithin(0.0f, 1.0f));
}

TEST(BlobsTest, SeparationControlsDifficulty) {
  Dataset easy = MakeBlobs(4, 400, 5, /*class_separation=*/4.0);
  Dataset hard = MakeBlobs(4, 400, 5, /*class_separation=*/0.2);
  forest::ForestConfig config;
  config.num_trees = 15;
  config.seed = 1;
  Rng rng(5);
  auto easy_tt = MakeTrainTest(easy, 0.3, &rng).MoveValue();
  auto hard_tt = MakeTrainTest(hard, 0.3, &rng).MoveValue();
  auto easy_rf = forest::RandomForest::Fit(easy_tt.train, {}, config).MoveValue();
  auto hard_rf = forest::RandomForest::Fit(hard_tt.train, {}, config).MoveValue();
  EXPECT_GT(easy_rf.Accuracy(easy_tt.test), hard_rf.Accuracy(hard_tt.test));
  EXPECT_GT(easy_rf.Accuracy(easy_tt.test), 0.95);
}

TEST(BlobsTest, ChunkedGeneratorIsBitIdenticalToUnchunked) {
  // MakeBlobsChunked is the million-row fast path; its contract is bitwise
  // identity with MakeBlobs — same RNG stream, same scaling — for every
  // chunking, including chunk sizes that don't divide the row count and a
  // chunk larger than the dataset.
  const Dataset reference = MakeBlobs(91, 1000, 7, 1.3, 0.4);
  for (size_t chunk : {1u, 97u, 256u, 1000u, 4096u}) {
    const Dataset chunked = MakeBlobsChunked(91, 1000, 7, 1.3, 0.4, chunk);
    ASSERT_EQ(chunked.num_rows(), reference.num_rows()) << "chunk=" << chunk;
    EXPECT_EQ(chunked.values(), reference.values()) << "chunk=" << chunk;
    EXPECT_EQ(chunked.labels(), reference.labels()) << "chunk=" << chunk;
    EXPECT_EQ(chunked.name(), reference.name());
  }
}

TEST(XorTest, RequiresDepthTwo) {
  Dataset d = MakeXor(5, 600);
  EXPECT_NEAR(d.PositiveFraction(), 0.5, 0.1);
  // A depth-1 stump cannot learn XOR...
  tree::TreeConfig stump;
  stump.max_depth = 1;
  auto stump_tree = tree::DecisionTree::Fit(d, {}, stump).MoveValue();
  EXPECT_LT(stump_tree.Accuracy(d), 0.7);
  // ...but an unconstrained tree can.
  tree::TreeConfig deep;
  auto deep_tree = tree::DecisionTree::Fit(d, {}, deep).MoveValue();
  EXPECT_GT(deep_tree.Accuracy(d), 0.95);
}

TEST(MakeByNameTest, DispatchesAllPaperNames) {
  for (const std::string& name : KnownDatasetNames()) {
    auto d = MakeByName(name, 1, 100);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_EQ(d.value().num_rows(), 100u);
  }
  EXPECT_FALSE(MakeByName("imagenet", 1).ok());
}

TEST(MakeByNameTest, ZeroRowsMeansTableOneSize) {
  auto d = MakeByName("breast-cancer", 1, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().num_rows(), kBreastCancerRows);
}

TEST(RenderImageAsciiTest, ProducesGrid) {
  Dataset d = MakeMnist26Like(9, 1);
  std::vector<float> pixels(d.Row(0).begin(), d.Row(0).end());
  const std::string art = RenderImageAscii(pixels);
  // 28 rows of 28 chars + newline each.
  EXPECT_EQ(art.size(), 28u * 29u);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 28);
}

/// Learnability sweep: every paper dataset must be in the accuracy regime
/// the paper reports (within synthetic-data tolerance).
class LearnabilitySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(LearnabilitySweep, ForestReachesPaperRegime) {
  const std::string name = GetParam();
  auto data = MakeByName(name, 42, name == "breast-cancer" ? 0 : 2500).MoveValue();
  Rng rng(7);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  forest::ForestConfig config;
  config.num_trees = 31;
  config.seed = 3;
  auto rf = forest::RandomForest::Fit(tt.train, {}, config).MoveValue();
  EXPECT_GT(rf.Accuracy(tt.test), 0.90) << name;
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, LearnabilitySweep,
                         ::testing::Values("mnist2-6", "breast-cancer", "ijcnn1"));

}  // namespace
}  // namespace treewm::data::synthetic
