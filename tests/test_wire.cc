// Tests for the socket wire layer: fail-closed framing (every-prefix
// truncation + byte-flip fuzz), loopback integration against a real
// ServingFrontEnd (keep-alive, deadlines, mid-frame disconnects, accept
// shedding, idle timeout, graceful drain), and the acceptance matrix —
// completed wire responses bit-identical to the in-process front-end
// across connection counts × fault schedules, with exactly-once accounting.

#include "serve/wire/socket_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "io/ensemble_snapshot.h"
#include "predict/flat_ensemble.h"
#include "serve/registry/model_registry.h"
#include "serve/retry.h"
#include "serve/wire/frame.h"
#include "serve/wire/socket_client.h"
#include "serve/wire/sockets.h"

namespace treewm::serve::wire {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

// ---------------------------------------------------------------------------
// Shared fixtures

forest::RandomForest TrainForest(uint64_t seed, size_t num_trees = 9,
                                 size_t rows = 300, size_t features = 6) {
  auto d = data::synthetic::MakeBlobs(seed, rows, features, 1.5);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed;
  return forest::RandomForest::Fit(d, {}, config).MoveValue();
}

std::shared_ptr<const predict::FlatEnsemble> FlatOf(
    const forest::RandomForest& forest) {
  return std::make_shared<predict::FlatEnsemble>(
      predict::FlatEnsemble::FromClassificationTrees(forest.trees()));
}

std::unique_ptr<ServingFrontEnd> MakeFrontEnd(
    std::shared_ptr<const predict::FlatEnsemble> flat,
    bool start_dispatcher = true) {
  ServingOptions options;
  options.queue.capacity = 256;
  options.queue.shed_high_water = 224;
  options.batch.max_batch_rows = 16;
  options.batch.max_batch_delay = microseconds(100);
  options.start_dispatcher = start_dispatcher;
  return ServingFrontEnd::Create(std::move(flat), options).MoveValue();
}

PredictRequestMsg SampleRequest(uint64_t id = 7) {
  PredictRequestMsg msg;
  msg.request_id = id;
  msg.timeout = milliseconds(250);
  msg.features = {0.5f, -1.25f, 3.0f, 0.0f, -0.0f, 42.5f};
  return msg;
}

/// Blocking raw-socket helper: writes all of `bytes` or fails the test.
void RawWriteAll(const Fd& fd, std::span<const uint8_t> bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    auto wrote = WriteSome(fd, bytes.data() + written, bytes.size() - written);
    ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
    ASSERT_FALSE(wrote.value().would_block);
    written += wrote.value().bytes;
  }
}

/// Blocking raw-socket helper: reads until `decoder` yields a frame.
/// Returns nullopt on EOF or timeout.
std::optional<Frame> RawReadFrame(const Fd& fd, FrameDecoder* decoder) {
  while (true) {
    auto next = decoder->Next();
    if (!next.ok()) return std::nullopt;
    if (next.value().has_value()) return std::move(*next.value());
    uint8_t chunk[1024];
    auto got = ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok() || got.value().would_block || got.value().eof) {
      return std::nullopt;
    }
    decoder->Feed(std::span<const uint8_t>(chunk, got.value().bytes));
  }
}

/// Blocks until the peer (server) closes the connection; true on clean EOF.
bool RawReadToEof(const Fd& fd) {
  uint8_t chunk[256];
  while (true) {
    auto got = ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok() || got.value().would_block) return false;
    if (got.value().eof) return true;
  }
}

// ---------------------------------------------------------------------------
// Frame encoding / decoding

TEST(FrameTest, PredictRequestRoundTrip) {
  const PredictRequestMsg msg = SampleRequest();
  const std::vector<uint8_t> wire = EncodePredictRequest(msg);

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(frame.value()->type, FrameType::kPredictRequest);

  auto decoded = DecodePredictRequest(frame.value()->body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, msg.request_id);
  EXPECT_EQ(decoded.value().timeout, msg.timeout);
  EXPECT_EQ(decoded.value().features, msg.features);
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.HasPartialFrame());
}

TEST(FrameTest, PredictResponseErrorAndPingRoundTrip) {
  PredictResponseMsg response;
  response.request_id = 11;
  response.label = -1;
  response.votes = {1, -1, 1, 1, -1};
  ErrorMsg error;
  error.request_id = 12;
  error.code = StatusCode::kResourceExhausted;
  error.message = "queue full";
  PingMsg ping;
  ping.token = 0xDEADBEEFCAFEBABEULL;

  FrameDecoder decoder;
  decoder.Feed(EncodePredictResponse(response));
  decoder.Feed(EncodeError(error));
  decoder.Feed(EncodePing(FrameType::kPong, ping));

  auto f1 = decoder.Next();
  ASSERT_TRUE(f1.ok() && f1.value().has_value());
  auto decoded_response = DecodePredictResponse(f1.value()->body);
  ASSERT_TRUE(decoded_response.ok());
  EXPECT_EQ(decoded_response.value().request_id, 11u);
  EXPECT_EQ(decoded_response.value().label, -1);
  EXPECT_EQ(decoded_response.value().votes, response.votes);

  auto f2 = decoder.Next();
  ASSERT_TRUE(f2.ok() && f2.value().has_value());
  auto decoded_error = DecodeError(f2.value()->body);
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().ToStatus().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded_error.value().message, "queue full");

  auto f3 = decoder.Next();
  ASSERT_TRUE(f3.ok() && f3.value().has_value());
  EXPECT_EQ(f3.value()->type, FrameType::kPong);
  auto decoded_ping = DecodePing(f3.value()->body);
  ASSERT_TRUE(decoded_ping.ok());
  EXPECT_EQ(decoded_ping.value().token, ping.token);
}

TEST(FrameTest, NoDeadlineNormalizesToZeroOnTheWire) {
  PredictRequestMsg msg = SampleRequest();
  msg.timeout = kNoDeadline;  // must NOT travel as int64-max
  const std::vector<uint8_t> wire = EncodePredictRequest(msg);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok() && frame.value().has_value());
  auto decoded = DecodePredictRequest(frame.value()->body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().timeout, nanoseconds(0));
}

TEST(FrameTest, IncrementalFeedAtEverySplitPoint) {
  const std::vector<uint8_t> wire = EncodePredictRequest(SampleRequest());
  for (size_t split = 0; split < wire.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(std::span<const uint8_t>(wire.data(), split));
    auto first = decoder.Next();
    ASSERT_TRUE(first.ok()) << "split " << split;
    EXPECT_FALSE(first.value().has_value()) << "split " << split;
    decoder.Feed(std::span<const uint8_t>(wire.data() + split,
                                          wire.size() - split));
    auto second = decoder.Next();
    ASSERT_TRUE(second.ok()) << "split " << split;
    ASSERT_TRUE(second.value().has_value()) << "split " << split;
    EXPECT_EQ(second.value()->type, FrameType::kPredictRequest);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameTest, EveryPrefixTruncationYieldsNoFrame) {
  const std::vector<uint8_t> wire = EncodePredictRequest(SampleRequest());
  for (size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(std::span<const uint8_t>(wire.data(), len));
    auto next = decoder.Next();
    // A strict prefix is either "need more bytes" or (never) an error —
    // the header is valid, so it must simply be incomplete.
    ASSERT_TRUE(next.ok()) << "prefix " << len;
    EXPECT_FALSE(next.value().has_value()) << "prefix " << len;
    EXPECT_EQ(decoder.HasPartialFrame(), len > 0) << "prefix " << len;
  }
}

TEST(FrameTest, EveryPrefixOfTypedBodiesFailsClosed) {
  const PredictRequestMsg request = SampleRequest();
  PredictResponseMsg response;
  response.request_id = 3;
  response.label = 1;
  response.votes = {1, -1, 1};
  ErrorMsg error;
  error.request_id = 4;
  error.code = StatusCode::kDeadlineExceeded;
  error.message = "expired";
  PingMsg ping;
  ping.token = 99;

  // Strip the 16-byte frame header to get each valid body.
  const auto body_of = [](std::vector<uint8_t> frame) {
    return std::vector<uint8_t>(frame.begin() + kHeaderBytes, frame.end());
  };
  const std::vector<uint8_t> bodies[] = {
      body_of(EncodePredictRequest(request)),
      body_of(EncodePredictResponse(response)),
      body_of(EncodeError(error)),
      body_of(EncodePing(FrameType::kPing, ping)),
  };
  for (size_t which = 0; which < 4; ++which) {
    const std::vector<uint8_t>& body = bodies[which];
    for (size_t len = 0; len < body.size(); ++len) {
      const std::span<const uint8_t> prefix(body.data(), len);
      Status status = Status::OK();
      switch (which) {
        case 0: status = DecodePredictRequest(prefix).status(); break;
        case 1: status = DecodePredictResponse(prefix).status(); break;
        case 2: status = DecodeError(prefix).status(); break;
        case 3: status = DecodePing(prefix).status(); break;
      }
      EXPECT_EQ(status.code(), StatusCode::kParseError)
          << "body " << which << " prefix " << len;
    }
  }
}

TEST(FrameTest, EverySingleByteFlipFailsClosed) {
  const std::vector<uint8_t> wire = EncodePredictRequest(SampleRequest());
  for (size_t at = 0; at < wire.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = wire;
      corrupt[at] ^= static_cast<uint8_t>(1u << bit);
      FrameDecoder decoder;
      decoder.Feed(corrupt);
      auto next = decoder.Next();
      // Never an accepted frame: either ParseError (magic/CRC/field check)
      // or incomplete (a flipped length bit promising more bytes).
      if (next.ok()) {
        EXPECT_FALSE(next.value().has_value())
            << "byte " << at << " bit " << bit << " was accepted";
      } else {
        EXPECT_EQ(next.status().code(), StatusCode::kParseError);
      }
    }
  }
}

TEST(FrameTest, RandomFuzzNeverCrashesOrAcceptsGarbage) {
  // Seeded, so a failure reproduces. Random blobs plus randomly mutated
  // valid frames, decoded both whole and in random-size chunks.
  Rng rng(20250808);
  const std::vector<uint8_t> valid = EncodePredictRequest(SampleRequest());
  for (int round = 0; round < 500; ++round) {
    std::vector<uint8_t> blob;
    if (round % 2 == 0) {
      blob.resize(rng.UniformInt(200));
      for (auto& b : blob) b = static_cast<uint8_t>(rng.UniformInt(256));
    } else {
      blob = valid;
      const size_t flips = 1 + rng.UniformInt(4);
      for (size_t i = 0; i < flips; ++i) {
        blob[rng.UniformInt(blob.size())] ^=
            static_cast<uint8_t>(1 + rng.UniformInt(255));
      }
    }
    FrameDecoder decoder;
    size_t fed = 0;
    while (fed < blob.size()) {
      const size_t chunk = 1 + rng.UniformInt(blob.size() - fed);
      decoder.Feed(std::span<const uint8_t>(blob.data() + fed, chunk));
      fed += chunk;
      auto next = decoder.Next();
      if (!next.ok()) {
        EXPECT_EQ(next.status().code(), StatusCode::kParseError);
        EXPECT_TRUE(decoder.poisoned());
        // Poisoned streams repeat the error, they do not recover.
        auto again = decoder.Next();
        EXPECT_FALSE(again.ok());
        break;
      }
      if (next.value().has_value()) {
        // Only an untouched valid frame may decode; its body must then
        // decode cleanly too (no half-trusted frames escape).
        ASSERT_EQ(blob, valid);
        EXPECT_TRUE(DecodePredictRequest(next.value()->body).ok());
      }
    }
  }
}

TEST(FrameTest, OversizeBodyLengthFailsClosedBeforeBuffering) {
  std::vector<uint8_t> frame = EncodePredictRequest(SampleRequest());
  FrameDecoder decoder(/*max_body_bytes=*/8);  // smaller than the real body
  decoder.Feed(frame);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameTest, FeatureCountMismatchFailsClosed) {
  // Body claims 1000 features but carries 6: the count must be checked
  // against the bytes present before any allocation happens.
  std::vector<uint8_t> frame = EncodePredictRequest(SampleRequest());
  std::vector<uint8_t> body(frame.begin() + kHeaderBytes, frame.end());
  body[16] = 0xE8;  // num_features u32le at body offset 16 -> 1000
  body[17] = 0x03;
  auto decoded = DecodePredictRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kParseError);
}

TEST(FrameTest, CorruptFaultSiteFailsClosed) {
  FaultSpec always;
  ScopedFault corrupt("serve.wire.frame.corrupt", always);
  FrameDecoder decoder;
  decoder.Feed(EncodePredictRequest(SampleRequest()));
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kParseError);
  EXPECT_EQ(corrupt.fires(), 1u);
}

// ---------------------------------------------------------------------------
// Retry predicate

TEST(WireRetryTest, RetriesOverloadAndResetsOnly) {
  EXPECT_TRUE(IsWireRetryableStatus(Status::ResourceExhausted("shed")));
  EXPECT_TRUE(IsWireRetryableStatus(Status::IoError("connection reset")));
  EXPECT_FALSE(IsWireRetryableStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsWireRetryableStatus(Status::Timeout("slow")));
  EXPECT_FALSE(IsWireRetryableStatus(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsWireRetryableStatus(Status::ParseError("garbage")));
  EXPECT_FALSE(IsWireRetryableStatus(Status::FailedPrecondition("draining")));
}

TEST(WireRetryTest, RetryWithBackoffIfHonorsCustomPredicate) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  size_t calls = 0;
  const Status outcome = RetryWithBackoffIf(
      policy, &clock, IsWireRetryableStatus, [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::IoError("connection reset")
                         : Status::OK();
      });
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(calls, 3u);

  // The default helper does NOT retry transport errors.
  calls = 0;
  const Status untouched = RetryWithBackoff(policy, &clock, [&]() -> Status {
    ++calls;
    return Status::IoError("connection reset");
  });
  EXPECT_FALSE(untouched.ok());
  EXPECT_EQ(calls, 1u);
}

// ---------------------------------------------------------------------------
// Loopback integration

class WireLoopbackTest : public ::testing::Test {
 protected:
  void StartServer(SocketServerOptions options = {},
                   bool start_dispatcher = true) {
    forest_ = std::make_unique<forest::RandomForest>(TrainForest(5));
    front_end_ = MakeFrontEnd(FlatOf(*forest_), start_dispatcher);
    auto server = SocketServer::Create(front_end_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).MoveValue();
  }

  SocketClient MakeClient() {
    SocketClientOptions options;
    options.port = server_->port();
    options.recv_timeout = std::chrono::seconds(5);
    return SocketClient(options);
  }

  std::vector<float> Probe(uint64_t salt) const {
    std::vector<float> x(front_end_->num_features());
    Rng rng(salt);
    for (auto& v : x) {
      v = static_cast<float>(rng.UniformRealRange(-2.0, 2.0));
    }
    return x;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (front_end_ != nullptr) front_end_->Shutdown();
    if (server_ != nullptr) {
      // Exactly-once accounting must close after drain (models-list
      // requests are answered through the same books).
      const WireStats stats = server_->stats();
      EXPECT_EQ(stats.requests_received + stats.models_requests,
                stats.responses_sent + stats.refusals_sent +
                    stats.responses_dropped);
      EXPECT_EQ(stats.active_connections, 0u);
      EXPECT_EQ(stats.connections_accepted, stats.connections_closed);
    }
  }

  std::unique_ptr<forest::RandomForest> forest_;
  std::unique_ptr<ServingFrontEnd> front_end_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(WireLoopbackTest, PredictMatchesInProcessBitForBit) {
  StartServer();
  SocketClient client = MakeClient();
  for (uint64_t i = 0; i < 20; ++i) {
    const std::vector<float> x = Probe(i);
    auto wire_result = client.Predict(x);
    ASSERT_TRUE(wire_result.ok()) << wire_result.status().ToString();
    auto local_result = front_end_->Predict(x);
    ASSERT_TRUE(local_result.ok());
    EXPECT_EQ(wire_result.value().label, local_result.value().label);
    EXPECT_EQ(wire_result.value().votes, local_result.value().votes);
  }
}

TEST_F(WireLoopbackTest, KeepAliveReusesOneConnection) {
  StartServer();
  SocketClient client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Predict(Probe(i)).ok());
  }
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.round_trips(), 12u);
  const WireStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_received, 10u);
  EXPECT_EQ(stats.pings, 2u);
}

TEST_F(WireLoopbackTest, DeadlineExpiredOnWireFailsClosedTyped) {
  StartServer();
  SocketClient client = MakeClient();
  // A 1ns budget is spent before the request even reaches admission; the
  // refusal must come back as the original typed Status, not a generic
  // failure — and must not be retried by the wire retry discipline.
  auto result = client.Predict(Probe(1), nanoseconds(1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(IsWireRetryableStatus(result.status()));
  // The connection survives a per-request refusal.
  EXPECT_TRUE(client.Predict(Probe(2)).ok());
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
}

TEST_F(WireLoopbackTest, GarbageBytesEarnTypedErrorAndClose) {
  StartServer();
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
  ASSERT_TRUE(raw.ok());
  const uint8_t garbage[] = {'n', 'o', 't', ' ', 'a', ' ', 'f', 'r',
                             'a', 'm', 'e', '!', '!', '!', '!', '!'};
  RawWriteAll(raw.value(), garbage);
  FrameDecoder decoder;
  std::optional<Frame> reply = RawReadFrame(raw.value(), &decoder);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeError(reply->body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().request_id, 0u);  // connection-level
  EXPECT_EQ(error.value().ToStatus().code(), StatusCode::kParseError);
  // The server closes after a framing error — and keeps serving others.
  EXPECT_TRUE(RawReadToEof(raw.value()));
  SocketClient client = MakeClient();
  EXPECT_TRUE(client.Predict(Probe(3)).ok());
  EXPECT_GE(server_->stats().parse_errors, 1u);
}

TEST_F(WireLoopbackTest, MidFrameDisconnectLeavesServerServing) {
  StartServer();
  {
    auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
    ASSERT_TRUE(raw.ok());
    const std::vector<uint8_t> frame =
        EncodePredictRequest(SampleRequest());
    RawWriteAll(raw.value(),
                std::span<const uint8_t>(frame.data(), frame.size() / 2));
    // Half a frame on the wire, then vanish.
  }
  SocketClient client = MakeClient();
  ASSERT_TRUE(client.Predict(Probe(4)).ok());
  // The loop notices the dead peer on its next wake; poke it with traffic
  // until the close is recorded.
  for (int i = 0; i < 200 && server_->stats().closed_mid_frame == 0; ++i) {
    ASSERT_TRUE(client.Ping().ok());
    std::this_thread::yield();
  }
  EXPECT_EQ(server_->stats().closed_mid_frame, 1u);
}

TEST_F(WireLoopbackTest, AcceptShedOverHighWaterIsTypedRefusal) {
  SocketServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  SocketClient holder = MakeClient();
  ASSERT_TRUE(holder.Ping().ok());  // occupies the only slot, server-side
  SocketClient refused = MakeClient();
  auto result = refused.Predict(Probe(5));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsWireRetryableStatus(result.status()));  // polite clients back off
  EXPECT_EQ(server_->stats().connections_shed, 1u);
  // The holder's slot still works; once it leaves, a newcomer gets in.
  ASSERT_TRUE(holder.Ping().ok());
  holder.Close();
  SocketClient next = MakeClient();
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(4);
  auto eventually = next.PredictWithRetry(Probe(6), policy);
  EXPECT_TRUE(eventually.ok()) << eventually.status().ToString();
}

TEST_F(WireLoopbackTest, InFlightCapRefusesOverrunKeepsConnection) {
  SocketServerOptions options;
  options.max_in_flight_per_connection = 2;
  // Manual-mode front-end: requests park until the test pumps, so the
  // pipelined overrun deterministically hits the cap.
  StartServer(options, /*start_dispatcher=*/false);
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
  ASSERT_TRUE(raw.ok());
  std::vector<uint8_t> pipelined;
  for (uint64_t id = 1; id <= 3; ++id) {
    PredictRequestMsg msg;
    msg.request_id = id;
    msg.features = Probe(id);
    const std::vector<uint8_t> frame = EncodePredictRequest(msg);
    pipelined.insert(pipelined.end(), frame.begin(), frame.end());
  }
  RawWriteAll(raw.value(), pipelined);

  // The overrun refusal arrives without any pumping.
  FrameDecoder decoder;
  std::optional<Frame> first = RawReadFrame(raw.value(), &decoder);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->type, FrameType::kError);
  auto refusal = DecodeError(first->body);
  ASSERT_TRUE(refusal.ok());
  EXPECT_EQ(refusal.value().request_id, 3u);
  EXPECT_EQ(refusal.value().ToStatus().code(), StatusCode::kResourceExhausted);

  // Pump the front-end; the two admitted requests complete and the
  // connection — never closed — carries their responses back in order.
  std::atomic<bool> stop_pumping{false};
  ThreadPool pump_pool(1);
  ASSERT_TRUE(pump_pool.Submit([&] {
    while (!stop_pumping.load(std::memory_order_acquire)) {
      front_end_->Pump(/*force_flush=*/true);
      std::this_thread::yield();
    }
  }).ok());
  for (uint64_t id = 1; id <= 2; ++id) {
    std::optional<Frame> reply = RawReadFrame(raw.value(), &decoder);
    ASSERT_TRUE(reply.has_value()) << "response " << id;
    ASSERT_EQ(reply->type, FrameType::kPredictResponse);
    auto msg = DecodePredictResponse(reply->body);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg.value().request_id, id);
  }
  stop_pumping.store(true, std::memory_order_release);
  pump_pool.Shutdown();
  const WireStats stats = server_->stats();
  EXPECT_EQ(stats.requests_received, 3u);
  EXPECT_EQ(stats.refusals_sent, 1u);
  EXPECT_EQ(stats.responses_sent, 2u);
}

TEST_F(WireLoopbackTest, IdleTimeoutClosesQuietConnections) {
  SocketServerOptions options;
  options.idle_timeout = milliseconds(50);
  StartServer(options);
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(10));
  ASSERT_TRUE(raw.ok());
  const std::vector<uint8_t> ping = EncodePing(FrameType::kPing, PingMsg{1});
  RawWriteAll(raw.value(), ping);
  FrameDecoder decoder;
  ASSERT_TRUE(RawReadFrame(raw.value(), &decoder).has_value());
  // Go silent; the server must hang up on its own. The blocking read parks
  // until the server-side close arrives as EOF — no sleeping, no polling.
  EXPECT_TRUE(RawReadToEof(raw.value()));
  EXPECT_EQ(server_->stats().idle_closed, 1u);
}

TEST_F(WireLoopbackTest, OversizeFrameOnWireFailsClosed) {
  SocketServerOptions options;
  options.max_body_bytes = 64;
  StartServer(options);
  PredictRequestMsg big;
  big.request_id = 1;
  big.features.assign(100, 1.0f);  // 400-byte body > 64
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
  ASSERT_TRUE(raw.ok());
  RawWriteAll(raw.value(), EncodePredictRequest(big));
  FrameDecoder decoder;
  std::optional<Frame> reply = RawReadFrame(raw.value(), &decoder);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeError(reply->body);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error.value().ToStatus().code(), StatusCode::kParseError);
  EXPECT_TRUE(RawReadToEof(raw.value()));
}

TEST_F(WireLoopbackTest, DrainRefusesLateRequestsAndClosesEverything) {
  StartServer();
  SocketClient client = MakeClient();
  ASSERT_TRUE(client.Predict(Probe(1)).ok());
  server_->Shutdown();
  // Anything after drain: the listener is closed, so new connections are
  // refused at the transport, and the old connection was closed under us.
  auto late = client.Predict(Probe(2));
  EXPECT_FALSE(late.ok());
  SocketClient newcomer = MakeClient();
  EXPECT_FALSE(newcomer.Ping().ok());
  const WireStats stats = server_->stats();
  EXPECT_EQ(stats.requests_received, 1u);
  EXPECT_EQ(stats.responses_sent, 1u);
}

TEST_F(WireLoopbackTest, DrainDeadlineAbandonsWedgedFrontEndExactlyOnce) {
  SocketServerOptions options;
  options.drain_deadline = milliseconds(100);
  // Manual mode and nobody pumps: submitted requests can never complete, so
  // drain MUST hit its deadline, drop the answers, and still balance the
  // books — this is the "every accepted request answered or refused exactly
  // once" property under the worst case.
  StartServer(options, /*start_dispatcher=*/false);
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
  ASSERT_TRUE(raw.ok());
  std::vector<uint8_t> pipelined;
  for (uint64_t id = 1; id <= 4; ++id) {
    PredictRequestMsg msg;
    msg.request_id = id;
    msg.features = Probe(id);
    const std::vector<uint8_t> frame = EncodePredictRequest(msg);
    pipelined.insert(pipelined.end(), frame.begin(), frame.end());
  }
  RawWriteAll(raw.value(), pipelined);
  // Ensure the server has read them before we drain.
  for (int i = 0; i < 10000 && server_->stats().requests_received < 4; ++i) {
    std::this_thread::yield();
  }
  ASSERT_EQ(server_->stats().requests_received, 4u);
  server_->Shutdown();
  const WireStats stats = server_->stats();
  EXPECT_EQ(stats.requests_received, 4u);
  EXPECT_EQ(stats.responses_sent, 0u);
  EXPECT_EQ(stats.responses_dropped, 4u);
  // Manual front-end still owes its promises; complete them so its own
  // drain accounting stays clean.
  front_end_->Shutdown();
}

// ---------------------------------------------------------------------------
// Wire protocol v2: model-id routing and the models listing

/// Re-stamps the header CRC (over bytes [4, 12) + body) after a test
/// mutated a header field, so the mutation reaches the field's own check
/// instead of dying at the checksum.
void RestampFrameCrc(std::vector<uint8_t>* frame) {
  std::vector<uint8_t> covered((*frame).begin() + 4, (*frame).begin() + 12);
  covered.insert(covered.end(), (*frame).begin() + kHeaderBytes, (*frame).end());
  const uint32_t crc = Crc32(covered);
  (*frame)[12] = static_cast<uint8_t>(crc & 0xFF);
  (*frame)[13] = static_cast<uint8_t>((crc >> 8) & 0xFF);
  (*frame)[14] = static_cast<uint8_t>((crc >> 16) & 0xFF);
  (*frame)[15] = static_cast<uint8_t>((crc >> 24) & 0xFF);
}

TEST(FrameV2Test, PredictRequestRoundTripCarriesModelId) {
  PredictRequestMsg msg = SampleRequest();
  msg.model_id = "fraud-v7";
  const std::vector<uint8_t> wire =
      EncodePredictRequest(msg, kWireVersionMultiModel);

  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok() && frame.value().has_value());
  EXPECT_EQ(frame.value()->type, FrameType::kPredictRequest);
  EXPECT_EQ(frame.value()->version, kWireVersionMultiModel);

  auto decoded = DecodePredictRequest(frame.value()->body, frame.value()->version);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, msg.request_id);
  EXPECT_EQ(decoded.value().timeout, msg.timeout);
  EXPECT_EQ(decoded.value().model_id, "fraud-v7");
  EXPECT_EQ(decoded.value().features, msg.features);
}

TEST(FrameV2Test, ModelsRequestAndResponseRoundTrip) {
  ModelsRequestMsg request;
  request.token = 0xFEEDULL;
  ModelsResponseMsg response;
  response.token = 0xFEEDULL;
  ModelInfoMsg a;
  a.id = "alpha";
  a.state = 2;  // SERVING
  a.checksum = 0xABCD1234u;
  a.submitted = 100;
  a.completed_ok = 97;
  a.shed = 3;
  ModelInfoMsg b;
  b.id = "beta";
  b.state = 5;  // FAILED
  response.models = {a, b};

  FrameDecoder decoder;
  decoder.Feed(EncodeModelsRequest(request));
  decoder.Feed(EncodeModelsResponse(response));

  auto f1 = decoder.Next();
  ASSERT_TRUE(f1.ok() && f1.value().has_value());
  EXPECT_EQ(f1.value()->type, FrameType::kModelsRequest);
  EXPECT_EQ(f1.value()->version, kWireVersionMultiModel);
  auto req = DecodeModelsRequest(f1.value()->body);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().token, request.token);

  auto f2 = decoder.Next();
  ASSERT_TRUE(f2.ok() && f2.value().has_value());
  EXPECT_EQ(f2.value()->type, FrameType::kModelsResponse);
  auto rsp = DecodeModelsResponse(f2.value()->body);
  ASSERT_TRUE(rsp.ok()) << rsp.status().ToString();
  EXPECT_EQ(rsp.value().token, response.token);
  ASSERT_EQ(rsp.value().models.size(), 2u);
  EXPECT_EQ(rsp.value().models[0].id, "alpha");
  EXPECT_EQ(rsp.value().models[0].state, 2);
  EXPECT_EQ(rsp.value().models[0].checksum, 0xABCD1234u);
  EXPECT_EQ(rsp.value().models[0].submitted, 100u);
  EXPECT_EQ(rsp.value().models[0].completed_ok, 97u);
  EXPECT_EQ(rsp.value().models[0].shed, 3u);
  EXPECT_EQ(rsp.value().models[1].id, "beta");
  EXPECT_EQ(rsp.value().models[1].state, 5);
}

TEST(FrameV2Test, EveryPrefixOfV2BodiesFailsClosed) {
  PredictRequestMsg request = SampleRequest();
  request.model_id = "alpha";
  ModelsResponseMsg response;
  response.token = 9;
  ModelInfoMsg row;
  row.id = "alpha";
  row.state = 2;
  response.models = {row};

  const auto body_of = [](std::vector<uint8_t> frame) {
    return std::vector<uint8_t>(frame.begin() + kHeaderBytes, frame.end());
  };
  const std::vector<uint8_t> request_body =
      body_of(EncodePredictRequest(request, kWireVersionMultiModel));
  for (size_t len = 0; len < request_body.size(); ++len) {
    const std::span<const uint8_t> prefix(request_body.data(), len);
    EXPECT_EQ(DecodePredictRequest(prefix, kWireVersionMultiModel).status().code(),
              StatusCode::kParseError)
        << "v2 request prefix " << len;
  }
  const std::vector<uint8_t> response_body =
      body_of(EncodeModelsResponse(response));
  for (size_t len = 0; len < response_body.size(); ++len) {
    const std::span<const uint8_t> prefix(response_body.data(), len);
    EXPECT_EQ(DecodeModelsResponse(prefix).status().code(),
              StatusCode::kParseError)
        << "models response prefix " << len;
  }
  // Version mismatch is not a free pass either: a v2 body read with the v1
  // layout lands the feature count on the model-id bytes and fails closed.
  EXPECT_EQ(DecodePredictRequest(request_body, kWireVersion).status().code(),
            StatusCode::kParseError);
}

TEST(FrameV2Test, OversizeModelIdLengthFailsClosed) {
  PredictRequestMsg msg = SampleRequest();
  msg.model_id = "ok";
  std::vector<uint8_t> frame = EncodePredictRequest(msg, kWireVersionMultiModel);
  std::vector<uint8_t> body(frame.begin() + kHeaderBytes, frame.end());
  // u16 model-id length lives at body offset 16 (after request_id+timeout);
  // claim 0xFFFF — far past both the bytes present and kMaxModelIdBytes.
  body[16] = 0xFF;
  body[17] = 0xFF;
  EXPECT_EQ(DecodePredictRequest(body, kWireVersionMultiModel).status().code(),
            StatusCode::kParseError);
}

TEST(FrameV2Test, UnsupportedVersionByteFailsClosed) {
  std::vector<uint8_t> frame = EncodePredictRequest(SampleRequest());
  frame[4] = 3;  // one past kWireVersionMultiModel
  RestampFrameCrc(&frame);
  FrameDecoder decoder;
  decoder.Feed(frame);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameV2Test, ModelsFrameTypeInAV1FrameFailsClosed) {
  // kModelsRequest is a v2-only frame type; a v1 header carrying it is a
  // protocol violation, not a negotiation.
  std::vector<uint8_t> body(8, 0);
  body[0] = 9;  // token
  std::vector<uint8_t> frame;
  AppendFrame(FrameType::kModelsRequest, body, &frame, kWireVersion);
  FrameDecoder decoder;
  decoder.Feed(frame);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Registry-mode loopback: version negotiation against a live ModelRegistry

class WireRegistryLoopbackTest : public ::testing::Test {
 protected:
  void StartRegistryServer() {
    ModelRegistryOptions registry_options;
    registry_options.serving.queue.capacity = 256;
    registry_options.serving.queue.shed_high_water = 224;
    registry_options.serving.batch.max_batch_rows = 16;
    registry_options.serving.batch.max_batch_delay = microseconds(100);
    auto registry = ModelRegistry::Create(registry_options);
    ASSERT_TRUE(registry.ok()) << registry.status().ToString();
    registry_ = std::move(registry).MoveValue();

    alpha_ = FlatOf(TrainForest(21));
    beta_ = FlatOf(TrainForest(22, /*num_trees=*/7));
    ASSERT_TRUE(registry_->Load("alpha", alpha_).ok());
    ASSERT_TRUE(registry_->Load("beta", beta_).ok());

    SocketServerOptions server_options;
    server_options.default_model = "alpha";
    auto server = SocketServer::Create(registry_.get(), server_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).MoveValue();
  }

  SocketClient MakeClient(std::string model_id = "") {
    SocketClientOptions options;
    options.port = server_->port();
    options.recv_timeout = std::chrono::seconds(5);
    options.model_id = std::move(model_id);
    return SocketClient(options);
  }

  std::vector<float> Probe(uint64_t salt) const {
    std::vector<float> x(6);  // TrainForest default feature count
    Rng rng(salt);
    for (auto& v : x) {
      v = static_cast<float>(rng.UniformRealRange(-2.0, 2.0));
    }
    return x;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (registry_ != nullptr) registry_->Shutdown();
    if (server_ != nullptr) {
      const WireStats stats = server_->stats();
      EXPECT_EQ(stats.requests_received + stats.models_requests,
                stats.responses_sent + stats.refusals_sent +
                    stats.responses_dropped);
      EXPECT_EQ(stats.active_connections, 0u);
    }
  }

  std::shared_ptr<const predict::FlatEnsemble> alpha_;
  std::shared_ptr<const predict::FlatEnsemble> beta_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(WireRegistryLoopbackTest, V1ClientLandsOnDefaultModelBitIdentical) {
  StartRegistryServer();
  SocketClient client = MakeClient();  // empty model id = protocol v1
  for (uint64_t i = 0; i < 12; ++i) {
    const std::vector<float> x = Probe(i);
    auto wire_result = client.Predict(x);
    ASSERT_TRUE(wire_result.ok()) << wire_result.status().ToString();
    auto local = registry_->Predict("alpha", x);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(wire_result.value().label, local.value().label);
    EXPECT_EQ(wire_result.value().votes, local.value().votes);
  }
  EXPECT_EQ(server_->stats().requests_received, 12u);
}

TEST_F(WireRegistryLoopbackTest, V2ClientTargetsNamedModelBitIdentical) {
  StartRegistryServer();
  SocketClient client = MakeClient("beta");
  for (uint64_t i = 0; i < 12; ++i) {
    const std::vector<float> x = Probe(100 + i);
    auto wire_result = client.Predict(x);
    ASSERT_TRUE(wire_result.ok()) << wire_result.status().ToString();
    auto local = registry_->Predict("beta", x);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(wire_result.value().label, local.value().label);
    EXPECT_EQ(wire_result.value().votes, local.value().votes);
  }
}

TEST_F(WireRegistryLoopbackTest, ResponsesEchoTheRequestFrameVersion) {
  StartRegistryServer();
  auto raw = ConnectTcpLoopback(server_->port(), std::chrono::seconds(5));
  ASSERT_TRUE(raw.ok());
  FrameDecoder decoder;

  PredictRequestMsg v1 = SampleRequest(1);
  RawWriteAll(raw.value(), EncodePredictRequest(v1, kWireVersion));
  std::optional<Frame> reply = RawReadFrame(raw.value(), &decoder);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kPredictResponse);
  EXPECT_EQ(reply->version, kWireVersion);  // v1 in, v1 out

  PredictRequestMsg v2 = SampleRequest(2);
  v2.model_id = "beta";
  RawWriteAll(raw.value(), EncodePredictRequest(v2, kWireVersionMultiModel));
  reply = RawReadFrame(raw.value(), &decoder);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kPredictResponse);
  EXPECT_EQ(reply->version, kWireVersionMultiModel);
}

TEST_F(WireRegistryLoopbackTest, UnknownModelIsTypedNotFoundConnectionKept) {
  StartRegistryServer();
  SocketClient client = MakeClient("ghost");
  auto refused = client.Predict(Probe(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotFound);
  // Addressing a missing model is a per-request mistake: the connection
  // survives and keeps answering.
  EXPECT_TRUE(client.Ping().ok());
  auto again = client.Predict(Probe(2));
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  const WireStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.refusals_sent, 2u);
}

TEST_F(WireRegistryLoopbackTest, ListModelsReturnsSortedLiveRows) {
  StartRegistryServer();
  ASSERT_TRUE(registry_->Predict("alpha", Probe(3)).ok());
  SocketClient client = MakeClient();
  auto models = client.ListModels();
  ASSERT_TRUE(models.ok()) << models.status().ToString();
  ASSERT_EQ(models.value().size(), 2u);
  EXPECT_EQ(models.value()[0].id, "alpha");
  EXPECT_EQ(models.value()[1].id, "beta");
  for (const ModelInfoMsg& row : models.value()) {
    EXPECT_EQ(row.state, static_cast<uint8_t>(ModelState::kServing));
  }
  EXPECT_EQ(models.value()[0].checksum, io::EnsembleChecksum(*alpha_));
  EXPECT_EQ(models.value()[1].checksum, io::EnsembleChecksum(*beta_));
  EXPECT_GE(models.value()[0].submitted, 1u);
  EXPECT_EQ(server_->stats().models_requests, 1u);
}

TEST_F(WireRegistryLoopbackTest, RegistryServerRequiresADefaultModel) {
  ModelRegistryOptions registry_options;
  auto registry = ModelRegistry::Create(registry_options);
  ASSERT_TRUE(registry.ok());
  // No default_model: every v1 frame would be unroutable, so Create refuses
  // up front instead of failing per request.
  auto server = SocketServer::Create(registry.value().get(), {});
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WireRegistryLoopbackTest, ClientRefusesOversizeModelIdBeforeDialing) {
  StartRegistryServer();
  SocketClient client = MakeClient(std::string(300, 'm'));
  auto refused = client.Predict(Probe(4));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(client.connected());  // refused before any bytes moved
}

TEST_F(WireLoopbackTest, SingleModelServerRefusesV2AddressingTyped) {
  StartServer();
  // A model id on a single-model server is NEVER silently served by the
  // one model that happens to be loaded — that could be a different model
  // than the client named.
  SocketClientOptions options;
  options.port = server_->port();
  options.model_id = "alpha";
  SocketClient addressed(options);
  auto refused = addressed.Predict(Probe(7));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(addressed.Ping().ok());  // connection kept

  SocketClient plain = MakeClient();
  auto models = plain.ListModels();
  ASSERT_FALSE(models.ok());
  EXPECT_EQ(models.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(plain.Predict(Probe(8)).ok());  // connection kept here too
  EXPECT_EQ(server_->stats().models_requests, 1u);
}

// ---------------------------------------------------------------------------
// Acceptance matrix: determinism across connections × fault schedules

struct FaultSchedule {
  const char* name;
  const char* site;      // nullptr = no fault armed
  double probability;
};

class WireDeterminismTest : public ::testing::TestWithParam<int> {};

TEST(WireDeterminismMatrixTest, CompletedResponsesBitIdenticalUnderFaults) {
  const forest::RandomForest forest = TrainForest(11);
  const auto flat = FlatOf(forest);

  // Reference answers from a pure in-process front-end, computed once.
  const size_t kProbes = 24;
  std::vector<std::vector<float>> probes;
  std::vector<PredictResult> reference;
  {
    auto local = MakeFrontEnd(flat);
    Rng rng(42);
    for (size_t i = 0; i < kProbes; ++i) {
      std::vector<float> x(local->num_features());
      for (auto& v : x) {
        v = static_cast<float>(rng.UniformRealRange(-2.0, 2.0));
      }
      auto result = local->Predict(x);
      ASSERT_TRUE(result.ok());
      probes.push_back(std::move(x));
      reference.push_back(std::move(result).MoveValue());
    }
    local->Shutdown();
  }

  const FaultSchedule kSchedules[] = {
      {"none", nullptr, 0.0},
      {"short-read", "serve.wire.read.short", 0.3},
      {"mid-frame-reset", "serve.wire.read.reset", 0.05},
      {"accept-fail", "serve.wire.accept.fail", 0.3},
  };
  const size_t kConnections[] = {1, 4, 16};

  for (const FaultSchedule& schedule : kSchedules) {
    for (const size_t num_connections : kConnections) {
      SCOPED_TRACE(std::string("schedule=") + schedule.name +
                   " connections=" + std::to_string(num_connections));
      auto front_end = MakeFrontEnd(flat);
      auto server = SocketServer::Create(front_end.get(), {});
      ASSERT_TRUE(server.ok());

      std::optional<ScopedFault> fault;
      if (schedule.site != nullptr) {
        FaultSpec spec;
        spec.probability = schedule.probability;
        spec.seed = 0xFA017 + num_connections;
        fault.emplace(schedule.site, spec);
      }

      std::atomic<uint64_t> completed{0};
      std::atomic<uint64_t> failed{0};
      std::atomic<uint64_t> mismatched{0};
      {
        ThreadPool clients(num_connections);
        for (size_t c = 0; c < num_connections; ++c) {
          ASSERT_TRUE(clients.Submit([&, c] {
            SocketClientOptions client_options;
            client_options.port = server.value()->port();
            SocketClient client(client_options);
            RetryPolicy policy;
            policy.max_attempts = 8;
            policy.initial_backoff = milliseconds(1);
            policy.max_backoff = milliseconds(8);
            policy.seed = c + 1;
            for (size_t i = 0; i < kProbes; ++i) {
              const size_t at = (c + i) % kProbes;
              auto result = client.PredictWithRetry(probes[at], policy);
              if (!result.ok()) {
                failed.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              completed.fetch_add(1, std::memory_order_relaxed);
              if (result.value().label != reference[at].label ||
                  result.value().votes != reference[at].votes) {
                mismatched.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }).ok());
        }
        clients.Shutdown();
      }
      fault.reset();  // disarm before drain so shutdown I/O is clean

      server.value()->Shutdown();
      const WireStats stats = server.value()->stats();
      front_end->Shutdown();

      // The wire may change WHICH requests complete — never their value.
      EXPECT_EQ(mismatched.load(), 0u);
      EXPECT_GT(completed.load(), 0u);
      if (schedule.site == nullptr) {
        EXPECT_EQ(failed.load(), 0u);
        EXPECT_EQ(completed.load(), num_connections * kProbes);
      }
      // Exactly-once accounting closes in every cell.
      EXPECT_EQ(stats.requests_received + stats.models_requests,
                stats.responses_sent + stats.refusals_sent +
                    stats.responses_dropped);
      EXPECT_EQ(stats.active_connections, 0u);
      EXPECT_EQ(stats.connections_accepted, stats.connections_closed);
    }
  }
}

}  // namespace
}  // namespace treewm::serve::wire
