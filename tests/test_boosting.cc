// Tests for the gradient-boosting substrate (future-work extension).

#include "boosting/gbdt.h"

#include <gtest/gtest.h>

#include "data/sampling.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"

namespace treewm::boosting {
namespace {

TEST(RegressionTreeConfigTest, Validation) {
  RegressionTreeConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.max_depth = 3;
  config.min_samples_leaf = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(RegressionTreeTest, FitsConstantTarget) {
  auto data = data::synthetic::MakeBlobs(1, 50, 3, 1.0);
  std::vector<double> targets(50, 2.5);
  auto tree = RegressionTree::Fit(data, targets, RegressionTreeConfig{}).MoveValue();
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(data.Row(0)), 2.5);
}

TEST(RegressionTreeTest, FitsStepFunction) {
  data::Dataset data(1);
  std::vector<double> targets;
  for (int i = 0; i < 40; ++i) {
    const float x = static_cast<float>(i) / 40.0f;
    ASSERT_TRUE(data.AddRow(std::vector<float>{x}, data::kPositive).ok());
    targets.push_back(x < 0.5f ? -1.0 : 3.0);
  }
  RegressionTreeConfig config;
  config.max_depth = 1;
  auto tree = RegressionTree::Fit(data, targets, config).MoveValue();
  EXPECT_EQ(tree.Depth(), 1);
  EXPECT_NEAR(tree.Predict(std::vector<float>{0.1f}), -1.0, 1e-9);
  EXPECT_NEAR(tree.Predict(std::vector<float>{0.9f}), 3.0, 1e-9);
}

TEST(RegressionTreeTest, DepthCapBinds) {
  auto data = data::synthetic::MakeXor(2, 300);
  std::vector<double> targets(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) targets[i] = data.Label(i);
  RegressionTreeConfig config;
  config.max_depth = 2;
  auto tree = RegressionTree::Fit(data, targets, config).MoveValue();
  EXPECT_LE(tree.Depth(), 2);
}

TEST(RegressionTreeTest, SetLeafValueValidates) {
  auto data = data::synthetic::MakeBlobs(3, 60, 2, 2.0);
  std::vector<double> targets(60);
  for (size_t i = 0; i < 60; ++i) targets[i] = data.Label(i);
  auto tree = RegressionTree::Fit(data, targets, RegressionTreeConfig{}).MoveValue();
  int leaf = tree.LeafIndexFor(data.Row(0));
  EXPECT_TRUE(tree.SetLeafValue(leaf, 7.0).ok());
  EXPECT_DOUBLE_EQ(tree.Predict(data.Row(0)), 7.0);
  EXPECT_FALSE(tree.SetLeafValue(-1, 0.0).ok());
  if (tree.nodes()[0].feature != -1) {
    EXPECT_FALSE(tree.SetLeafValue(0, 0.0).ok());  // root is internal
  }
}

TEST(RegressionTreeTest, ValidatesInputs) {
  // Targets size != num_rows is InvalidArgument (never an out-of-range read
  // in the sweep), for the sort-once engine and the retained reference alike.
  auto data = data::synthetic::MakeBlobs(4, 20, 2, 1.0);
  for (size_t bad_size : {0u, 5u, 21u}) {
    const std::vector<double> targets(bad_size, 0.0);
    auto fast = RegressionTree::Fit(data, targets, RegressionTreeConfig{});
    ASSERT_FALSE(fast.ok()) << "targets size " << bad_size;
    EXPECT_EQ(fast.status().code(), StatusCode::kInvalidArgument);
    auto reference =
        RegressionTree::FitReference(data, targets, RegressionTreeConfig{});
    ASSERT_FALSE(reference.ok()) << "targets size " << bad_size;
    EXPECT_EQ(reference.status().code(), StatusCode::kInvalidArgument);
  }
  data::Dataset empty(2);
  EXPECT_FALSE(RegressionTree::Fit(empty, {}, RegressionTreeConfig{}).ok());
}

TEST(GbdtConfigTest, Validation) {
  GbdtConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_trees = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_trees = 10;
  config.learning_rate = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.learning_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(GbdtTest, LearnsXorWhereStumpsFail) {
  // XOR needs interaction terms: depth-3 boosted trees handle it.
  auto data = data::synthetic::MakeXor(5, 800);
  Rng rng(6);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  GbdtConfig config;
  config.num_trees = 60;
  auto model = Gbdt::Fit(tt.train, config).MoveValue();
  EXPECT_GT(model.Accuracy(tt.test), 0.95);
}

TEST(GbdtTest, StagedAccuracyImprovesWithRounds) {
  auto data = data::synthetic::MakeIjcnn1Like(7, 2000);
  Rng rng(8);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  GbdtConfig config;
  config.num_trees = 80;
  auto model = Gbdt::Fit(tt.train, config).MoveValue();
  const double early = model.StagedAccuracy(tt.test, 5);
  const double late = model.StagedAccuracy(tt.test, 80);
  EXPECT_GE(late, early);
  EXPECT_GT(late, 0.9);
  // StagedAccuracy(all trees) equals Accuracy.
  EXPECT_DOUBLE_EQ(model.StagedAccuracy(tt.test, 80), model.Accuracy(tt.test));
}

TEST(GbdtTest, CompetitiveWithRandomForest) {
  // The headline of the ext_gbdt_baseline bench in miniature: GBDT is at
  // least in the same league as an RF of equal size on tabular data.
  auto data = data::synthetic::MakeBreastCancerLike(9);
  Rng rng(10);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  GbdtConfig gbdt_config;
  gbdt_config.num_trees = 60;
  auto gbdt = Gbdt::Fit(tt.train, gbdt_config).MoveValue();
  forest::ForestConfig rf_config;
  rf_config.num_trees = 60;
  rf_config.seed = 11;
  auto rf = forest::RandomForest::Fit(tt.train, {}, rf_config).MoveValue();
  EXPECT_GT(gbdt.Accuracy(tt.test), rf.Accuracy(tt.test) - 0.05);
  EXPECT_GT(gbdt.Accuracy(tt.test), 0.9);
}

TEST(GbdtTest, ScoreIsLogOddsShaped) {
  auto data = data::synthetic::MakeBlobs(12, 400, 4, 3.0);
  Rng rng(13);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  GbdtConfig config;
  config.num_trees = 40;
  auto model = Gbdt::Fit(tt.train, config).MoveValue();
  // Confidently separated data: positive instances get positive scores.
  size_t consistent = 0;
  for (size_t i = 0; i < tt.test.num_rows(); ++i) {
    const double score = model.Score(tt.test.Row(i));
    if ((score >= 0) == (tt.test.Label(i) > 0)) ++consistent;
  }
  EXPECT_GT(static_cast<double>(consistent) /
                static_cast<double>(tt.test.num_rows()),
            0.95);
}

TEST(GbdtTest, ImbalancedInitialScoreIsNegative) {
  auto data = data::synthetic::MakeIjcnn1Like(14, 1000);  // 10% positive
  GbdtConfig config;
  config.num_trees = 5;
  auto model = Gbdt::Fit(data, config).MoveValue();
  EXPECT_LT(model.initial_score(), 0.0);  // log-odds of 0.1
}

TEST(GbdtTest, ValidatesInputs) {
  data::Dataset empty(2);
  EXPECT_FALSE(Gbdt::Fit(empty, GbdtConfig{}).ok());
}

TEST(GbdtWatermarkabilityTest, NoteExplainsTheGap) {
  const std::string note = GbdtWatermarkabilityNote();
  EXPECT_NE(note.find("residual"), std::string::npos);
  EXPECT_NE(note.find("interleaved"), std::string::npos);
}

/// Sweep: learning-rate / depth combinations all converge to a usable model.
struct GbdtParam {
  double learning_rate;
  int max_depth;
};

class GbdtSweep : public ::testing::TestWithParam<GbdtParam> {};

TEST_P(GbdtSweep, ReachesReasonableAccuracy) {
  const GbdtParam p = GetParam();
  auto data = data::synthetic::MakeBreastCancerLike(20);
  Rng rng(21);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  GbdtConfig config;
  config.num_trees = 50;
  config.learning_rate = p.learning_rate;
  config.tree.max_depth = p.max_depth;
  auto model = Gbdt::Fit(tt.train, config).MoveValue();
  EXPECT_GT(model.Accuracy(tt.test), 0.88)
      << "lr=" << p.learning_rate << " depth=" << p.max_depth;
}

INSTANTIATE_TEST_SUITE_P(Hyperparameters, GbdtSweep,
                         ::testing::Values(GbdtParam{0.05, 3}, GbdtParam{0.1, 2},
                                           GbdtParam{0.1, 4}, GbdtParam{0.3, 3},
                                           GbdtParam{1.0, 1}));

}  // namespace
}  // namespace treewm::boosting
