// Property tests for the multi-anchor forgery solve engine: SolveBatch must
// be bit-identical to the scalar Solve at every thread count, and the
// watched-option search over the CompiledRequirements arena must explore
// exactly the same tree as the naive rescan solver it replaced (same
// verdicts, same node counts, same witnesses).

#include "smt/forgery_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/signature.h"
#include "data/synthetic.h"
#include "smt/compiled_requirements.h"
#include "smt/tree_constraints.h"

namespace treewm::smt {
namespace {

using tree::DecisionTree;
using tree::TreeNode;

// ---------------------------------------------------------------------------
// Naive-rescan reference: the pre-arena solver, kept verbatim as the ground
// truth the watched-option engine is measured against. Every node re-scans
// all leaf options of all unassigned trees to pick the fail-first
// requirement; the production engine caches those counts and maintains them
// through the per-feature watch lists.

struct NaiveState {
  Box box;
  std::vector<TreeRequirement> requirements;
  std::vector<uint8_t> assigned;
  size_t num_assigned = 0;
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  bool budget_exhausted = false;

  explicit NaiveState(size_t num_features) : box(num_features) {}
};

bool NaiveApplyOption(Box* box, const LeafOption& option) {
  const size_t mark = box->Mark();
  for (const auto& c : option.constraints) {
    if (!box->Constrain(c.feature, c.lo, c.hi)) {
      box->RevertTo(mark);
      return false;
    }
  }
  return true;
}

bool NaiveSearch(NaiveState* state) {
  if (state->num_assigned == state->requirements.size()) return true;
  ++state->nodes;
  if (state->max_nodes != 0 && state->nodes > state->max_nodes) {
    state->budget_exhausted = true;
    return false;
  }
  size_t best_req = state->requirements.size();
  size_t best_count = SIZE_MAX;
  for (size_t r = 0; r < state->requirements.size(); ++r) {
    if (state->assigned[r]) continue;
    size_t count = 0;
    for (const LeafOption& option : state->requirements[r].options) {
      if (OptionCompatible(state->box, option)) {
        ++count;
        if (count >= best_count) break;
      }
    }
    if (count == 0) return false;
    if (count < best_count) {
      best_count = count;
      best_req = r;
      if (count == 1) break;
    }
  }
  state->assigned[best_req] = 1;
  ++state->num_assigned;
  for (const LeafOption& option : state->requirements[best_req].options) {
    if (!OptionCompatible(state->box, option)) continue;
    const size_t mark = state->box.Mark();
    if (!NaiveApplyOption(&state->box, option)) continue;
    if (NaiveSearch(state)) return true;
    state->box.RevertTo(mark);
    if (state->budget_exhausted) break;
  }
  state->assigned[best_req] = 0;
  --state->num_assigned;
  return false;
}

ForgeryOutcome NaiveSolve(const forest::RandomForest& forest,
                          const ForgeryQuery& query) {
  NaiveState state(forest.num_features());
  state.requirements =
      BuildTreeRequirements(forest, query.signature_bits, query.target_label)
          .MoveValue();
  state.max_nodes = query.max_nodes;
  for (size_t f = 0; f < forest.num_features(); ++f) {
    double lo = query.domain_lo;
    double hi = query.domain_hi;
    if (!query.anchor.empty()) {
      lo = std::max(lo, static_cast<double>(query.anchor[f]) - query.epsilon);
      hi = std::min(hi, static_cast<double>(query.anchor[f]) + query.epsilon);
    }
    if (lo > hi || !state.box.ConstrainClosed(static_cast<int>(f), lo, hi)) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }
  FilterOptions(state.box, &state.requirements);
  for (const TreeRequirement& req : state.requirements) {
    if (req.options.empty()) {
      ForgeryOutcome outcome;
      outcome.result = sat::SatResult::kUnsat;
      return outcome;
    }
  }
  state.assigned.assign(state.requirements.size(), 0);
  const bool found = NaiveSearch(&state);
  ForgeryOutcome outcome;
  outcome.nodes_explored = state.nodes;
  if (found) {
    outcome.witness = state.box.Witness(query.anchor);
    outcome.result = sat::SatResult::kSat;
  } else if (state.budget_exhausted) {
    outcome.result = sat::SatResult::kUnknown;
  } else {
    outcome.result = sat::SatResult::kUnsat;
  }
  return outcome;
}

// ---------------------------------------------------------------------------

struct Fixture {
  data::Dataset data;
  forest::RandomForest forest;
};

Fixture TrainedFixture(uint64_t seed, size_t num_trees, size_t rows = 300,
                       size_t features = 5) {
  auto data = data::synthetic::MakeBlobs(seed, rows, features, 1.2);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed + 1;
  auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
  return Fixture{std::move(data), std::move(forest)};
}

ForgeryQuery ScalarQueryFor(const ForgeryBatchQuery& shared,
                            const data::Dataset& anchors, size_t row) {
  ForgeryQuery q;
  q.signature_bits = shared.signature_bits;
  q.target_label = anchors.Label(row);
  q.anchor.assign(anchors.Row(row).begin(), anchors.Row(row).end());
  q.epsilon = shared.epsilon;
  q.domain_lo = shared.domain_lo;
  q.domain_hi = shared.domain_hi;
  q.max_nodes = shared.max_nodes_per_anchor;
  return q;
}

void ExpectSameOutcome(const ForgeryOutcome& a, const ForgeryOutcome& b,
                       const char* what, size_t row) {
  EXPECT_EQ(a.result, b.result) << what << " row " << row;
  EXPECT_EQ(a.nodes_explored, b.nodes_explored) << what << " row " << row;
  EXPECT_EQ(a.witness, b.witness) << what << " row " << row;
}

TEST(SolveBatchTest, MatchesScalarSolveAtEveryThreadCount) {
  Fixture fx = TrainedFixture(11, 10);
  Rng rng(3);
  // Mixed-label anchor block (both arenas exercised in one batch).
  std::vector<size_t> indices;
  for (size_t i = 0; i < 30; ++i) indices.push_back(i * 7 % fx.data.num_rows());
  const data::Dataset anchors = fx.data.Subset(indices);

  size_t sat_seen = 0;
  size_t unsat_seen = 0;
  // Sparse signatures are satisfiable on this fixture, dense ones are not —
  // sweep both so the equivalence covers witnesses AND deep UNSAT searches.
  for (double ones_fraction : {0.3, 0.5}) {
    for (double epsilon : {0.1, 0.4}) {
      const auto fake = core::Signature::Random(10, ones_fraction, &rng);
      ForgeryBatchQuery shared;
      shared.signature_bits = fake.bits();
      shared.epsilon = epsilon;
      shared.max_nodes_per_anchor = 50000;

      std::vector<ForgeryOutcome> scalar;
      for (size_t i = 0; i < anchors.num_rows(); ++i) {
        scalar.push_back(
            ForgerySolver::Solve(fx.forest, ScalarQueryFor(shared, anchors, i))
                .MoveValue());
      }
      for (size_t threads : {1u, 2u, 5u}) {
        shared.num_threads = threads;
        auto batch =
            ForgerySolver::SolveBatch(fx.forest, shared, anchors).MoveValue();
        ASSERT_EQ(batch.size(), anchors.num_rows());
        for (size_t i = 0; i < batch.size(); ++i) {
          ExpectSameOutcome(batch[i], scalar[i], "threads", i);
          EXPECT_EQ(batch[i].validated, scalar[i].validated) << "row " << i;
          if (batch[i].result == sat::SatResult::kSat) {
            EXPECT_TRUE(batch[i].validated) << "row " << i;
            ++sat_seen;
          } else if (batch[i].result == sat::SatResult::kUnsat) {
            ++unsat_seen;
          }
        }
      }
    }
  }
  EXPECT_GT(sat_seen, 0u) << "sweep never produced a witness — vacuous test";
  EXPECT_GT(unsat_seen, 0u) << "sweep never hit UNSAT — vacuous test";
}

TEST(WatchedSearchTest, MatchesNaiveRescanOnRandomizedEnsembles) {
  Rng rng(29);
  size_t sat_seen = 0;
  size_t unsat_seen = 0;
  for (uint64_t seed : {5u, 17u, 23u}) {
    Fixture fx = TrainedFixture(seed, 8);
    for (double epsilon : {0.05, 0.2, 0.5, 1.0}) {
      for (double ones_fraction : {0.3, 0.5}) {
        for (int trial = 0; trial < 2; ++trial) {
          const auto fake = core::Signature::Random(8, ones_fraction, &rng);
          ForgeryQuery query;
          query.signature_bits = fake.bits();
          query.target_label = trial % 2 == 0 ? +1 : -1;
          const size_t row = rng.UniformInt(fx.data.num_rows());
          query.anchor.assign(fx.data.Row(row).begin(), fx.data.Row(row).end());
          query.epsilon = epsilon;
          query.max_nodes = 20000;
          const ForgeryOutcome naive = NaiveSolve(fx.forest, query);
          const ForgeryOutcome watched =
              ForgerySolver::Solve(fx.forest, query).MoveValue();
          ExpectSameOutcome(watched, naive, "seed/eps", row);
          if (naive.result == sat::SatResult::kSat) ++sat_seen;
          if (naive.result == sat::SatResult::kUnsat) ++unsat_seen;
        }
      }
    }
  }
  EXPECT_GT(sat_seen, 0u) << "sweep never produced a witness — vacuous test";
  EXPECT_GT(unsat_seen, 0u) << "sweep never hit UNSAT — vacuous test";
}

TEST(WatchedSearchTest, MatchesNaiveWithoutAnchor) {
  // Unconstrained-ball queries (the scalar-only entry shape).
  Fixture fx = TrainedFixture(41, 6);
  Rng rng(43);
  for (int trial = 0; trial < 6; ++trial) {
    const auto fake = core::Signature::Random(6, 0.5, &rng);
    ForgeryQuery query;
    query.signature_bits = fake.bits();
    query.target_label = trial % 2 == 0 ? +1 : -1;
    query.max_nodes = 20000;
    const ForgeryOutcome naive = NaiveSolve(fx.forest, query);
    const ForgeryOutcome watched = ForgerySolver::Solve(fx.forest, query).MoveValue();
    ExpectSameOutcome(watched, naive, "trial", static_cast<size_t>(trial));
  }
}

TEST(SolveBatchTest, BudgetExhaustionIsIdenticalToScalar) {
  Fixture fx = TrainedFixture(31, 12, 400, 6);
  Rng rng(7);
  const auto fake = core::Signature::Random(12, 0.5, &rng);
  ForgeryBatchQuery shared;
  shared.signature_bits = fake.bits();
  shared.epsilon = 0.3;
  shared.max_nodes_per_anchor = 4;  // absurdly small: most searches truncate

  std::vector<size_t> indices;
  for (size_t i = 0; i < 20; ++i) indices.push_back(i);
  const data::Dataset anchors = fx.data.Subset(indices);
  const auto batch = ForgerySolver::SolveBatch(fx.forest, shared, anchors).MoveValue();
  size_t unknown = 0;
  for (size_t i = 0; i < anchors.num_rows(); ++i) {
    const auto scalar =
        ForgerySolver::Solve(fx.forest, ScalarQueryFor(shared, anchors, i))
            .MoveValue();
    ExpectSameOutcome(batch[i], scalar, "budget", i);
    if (batch[i].result == sat::SatResult::kUnknown) {
      ++unknown;
      EXPECT_EQ(batch[i].nodes_explored, shared.max_nodes_per_anchor + 1);
    }
  }
  EXPECT_GT(unknown, 0u) << "budget never bound — test parameters too loose";
}

TEST(SolveBatchTest, AllUnsatBatchProducesNoWitnesses) {
  // Stump A: +1 iff x0 <= 0.3. Stump B: +1 iff x0 > 0.7. Both must be +1:
  // impossible for every anchor.
  auto a = DecisionTree::FromNodes({TreeNode{0, 0.3f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, +1},
                                    TreeNode{-1, 0, -1, -1, -1}},
                                   1)
               .MoveValue();
  auto b = DecisionTree::FromNodes({TreeNode{0, 0.7f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, -1},
                                    TreeNode{-1, 0, -1, -1, +1}},
                                   1)
               .MoveValue();
  auto ensemble = forest::RandomForest::FromTrees({a, b}).MoveValue();
  data::Dataset anchors(1);
  for (float x : {0.1f, 0.4f, 0.8f}) {
    ASSERT_TRUE(anchors.AddRow(std::vector<float>{x}, +1).ok());
  }
  ForgeryBatchQuery shared;
  shared.signature_bits = {0, 0};
  shared.epsilon = 1.0;
  const auto batch = ForgerySolver::SolveBatch(ensemble, shared, anchors).MoveValue();
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& outcome : batch) {
    EXPECT_EQ(outcome.result, sat::SatResult::kUnsat);
    EXPECT_TRUE(outcome.witness.empty());
    EXPECT_FALSE(outcome.validated);
  }
  // The mirrored query (-1 from both trees) is satisfiable in (0.3, 0.7].
  data::Dataset negative(1);
  ASSERT_TRUE(negative.AddRow(std::vector<float>{0.5f}, -1).ok());
  const auto neg = ForgerySolver::SolveBatch(ensemble, shared, negative).MoveValue();
  ASSERT_EQ(neg[0].result, sat::SatResult::kSat);
  EXPECT_TRUE(neg[0].validated);
}

TEST(SolveBatchTest, EmptyAnchorsReturnEmptyOutcomes) {
  Fixture fx = TrainedFixture(19, 4);
  ForgeryBatchQuery shared;
  shared.signature_bits = std::vector<uint8_t>(4, 0);
  EXPECT_TRUE(ForgerySolver::SolveBatch(fx.forest, shared, data::Dataset(5))
                  .MoveValue()
                  .empty());
}

TEST(SolveBatchTest, ValidatesInputs) {
  Fixture fx = TrainedFixture(19, 4);
  data::Dataset anchors = fx.data.Subset({0, 1});
  ForgeryBatchQuery shared;
  shared.signature_bits = std::vector<uint8_t>(3, 0);  // wrong length
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, anchors).ok());
  shared.signature_bits = std::vector<uint8_t>(4, 0);
  shared.epsilon = -0.5;
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, anchors).ok());
  shared.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, anchors).ok());
  shared.epsilon = 0.5;
  shared.domain_lo = 1.0;
  shared.domain_hi = 0.0;
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, anchors).ok());
  shared.domain_hi = 1.0;
  data::Dataset bad(fx.forest.num_features() + 1);
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, bad).ok());
}

TEST(ValidateBallGeometryTest, DefinesTheSolverEpsilonDomain) {
  EXPECT_TRUE(ValidateBallGeometry(0.0, 0.0, 1.0).ok());   // exact match is legal
  EXPECT_TRUE(ValidateBallGeometry(5.0, 0.0, 1.0).ok());   // non-binding ball
  EXPECT_TRUE(ValidateBallGeometry(1.0, 0.5, 0.5).ok());   // degenerate domain
  EXPECT_FALSE(ValidateBallGeometry(-0.1, 0.0, 1.0).ok());
  EXPECT_FALSE(
      ValidateBallGeometry(std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0).ok());
  EXPECT_FALSE(ValidateBallGeometry(0.5, 1.0, 0.0).ok());
  EXPECT_FALSE(
      ValidateBallGeometry(0.5, std::numeric_limits<double>::quiet_NaN(), 1.0).ok());
}

TEST(CompiledRequirementsTest, ArenaReuseMatchesFreshCompile) {
  Fixture fx = TrainedFixture(53, 8);
  Rng rng(59);
  const auto fake = core::Signature::Random(8, 0.5, &rng);
  const auto arena =
      CompiledRequirements::Compile(fx.forest, fake.bits(), +1).MoveValue();
  EXPECT_EQ(arena->num_requirements(), fx.forest.num_trees());
  EXPECT_EQ(arena->num_features(), fx.forest.num_features());

  for (size_t row : {0u, 5u, 11u}) {
    ForgeryQuery query;
    query.signature_bits = fake.bits();
    query.target_label = +1;
    query.anchor.assign(fx.data.Row(row).begin(), fx.data.Row(row).end());
    query.epsilon = 0.3;
    query.max_nodes = 20000;
    const auto fresh = ForgerySolver::Solve(fx.forest, query).MoveValue();
    const auto reused = ForgerySolver::Solve(fx.forest, *arena, query).MoveValue();
    ExpectSameOutcome(reused, fresh, "arena", row);
  }

  // A query that disagrees with the arena is rejected, not silently solved.
  ForgeryQuery mismatched;
  mismatched.signature_bits = fake.bits();
  mismatched.target_label = -1;
  EXPECT_FALSE(ForgerySolver::Solve(fx.forest, *arena, mismatched).ok());
}

TEST(CompiledRequirementsTest, LayoutIsCoherent) {
  Fixture fx = TrainedFixture(61, 5);
  Rng rng(67);
  const auto fake = core::Signature::Random(5, 0.5, &rng);
  const auto arena =
      CompiledRequirements::Compile(fx.forest, fake.bits(), +1).MoveValue();

  const auto rb = arena->req_option_begin();
  ASSERT_EQ(rb.size(), arena->num_requirements() + 1);
  EXPECT_EQ(rb.back(), arena->num_options());
  const auto cb = arena->option_constraint_begin();
  ASSERT_EQ(cb.size(), arena->num_options() + 1);
  EXPECT_EQ(cb.back(), arena->num_constraints());

  // Constraint spans are feature-sorted with one entry per feature.
  for (size_t o = 0; o < arena->num_options(); ++o) {
    for (uint32_t c = cb[o]; c + 1 < cb[o + 1]; ++c) {
      EXPECT_LT(arena->constraint_feature()[c], arena->constraint_feature()[c + 1]);
    }
  }
  // The watch index covers every constraint exactly once.
  const auto wb = arena->watch_begin();
  ASSERT_EQ(wb.size(), arena->num_features() + 1);
  EXPECT_EQ(wb.back(), arena->num_constraints());
  std::vector<uint8_t> seen(arena->num_constraints(), 0);
  for (size_t f = 0; f < arena->num_features(); ++f) {
    for (uint32_t k = wb[f]; k < wb[f + 1]; ++k) {
      const uint32_t c = arena->watch_constraint()[k];
      EXPECT_EQ(arena->constraint_feature()[c], static_cast<int32_t>(f));
      EXPECT_EQ(arena->watch_option()[k],
                [&] {  // the option owning constraint c
                  uint32_t o = 0;
                  while (cb[o + 1] <= c) ++o;
                  return o;
                }());
      EXPECT_EQ(seen[c], 0);
      seen[c] = 1;
    }
  }
}

TEST(ForgeryArenaCacheTest, ReusesArenasAndRejectsStaleOnes) {
  Fixture fx = TrainedFixture(71, 6);
  Rng rng(73);
  const auto fake = core::Signature::Random(6, 0.5, &rng);
  // Two anchors per label, so both cache slots are exercised.
  std::vector<size_t> indices;
  for (int label : {+1, -1}) {
    size_t taken = 0;
    for (size_t i = 0; i < fx.data.num_rows() && taken < 2; ++i) {
      if (fx.data.Label(i) == label) {
        indices.push_back(i);
        ++taken;
      }
    }
  }
  ASSERT_EQ(indices.size(), 4u);
  const data::Dataset anchors = fx.data.Subset(indices);

  ForgeryBatchQuery shared;
  shared.signature_bits = fake.bits();
  shared.epsilon = 0.3;
  shared.max_nodes_per_anchor = 20000;

  ForgeryArenaCache cache;
  const auto first =
      ForgerySolver::SolveBatch(fx.forest, shared, anchors, &cache).MoveValue();
  const CompiledRequirements* pos = cache.positive.get();
  const CompiledRequirements* neg = cache.negative.get();
  const auto second =
      ForgerySolver::SolveBatch(fx.forest, shared, anchors, &cache).MoveValue();
  EXPECT_EQ(cache.positive.get(), pos);  // compiled once, reused
  EXPECT_EQ(cache.negative.get(), neg);
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameOutcome(first[i], second[i], "cache", i);
  }

  // A cache carried over to a different signature must fail loudly.
  const auto other = core::Signature::Random(6, 0.5, &rng);
  ASSERT_NE(other.bits(), fake.bits());
  shared.signature_bits = other.bits();
  EXPECT_FALSE(ForgerySolver::SolveBatch(fx.forest, shared, anchors, &cache).ok());

  // So must an arena sitting in the wrong label slot.
  shared.signature_bits = fake.bits();
  ForgeryArenaCache swapped;
  swapped.negative = cache.positive;
  EXPECT_FALSE(
      ForgerySolver::SolveBatch(fx.forest, shared, anchors, &swapped).ok());
}

}  // namespace
}  // namespace treewm::smt
