// Unit tests for CSV import/export.

#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace treewm::data {
namespace {

TEST(CsvParseTest, BasicLastColumnLabel) {
  auto result = ParseCsv("0.1,0.2,1\n0.3,0.4,-1\n");
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.Label(0), kPositive);
  EXPECT_EQ(d.Label(1), kNegative);
  EXPECT_FLOAT_EQ(d.At(1, 1), 0.4f);
}

TEST(CsvParseTest, ZeroOneLabelsMapToMinusPlus) {
  auto result = ParseCsv("1.0,0\n2.0,1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Label(0), kNegative);
  EXPECT_EQ(result.value().Label(1), kPositive);
}

TEST(CsvParseTest, HeaderSkipped) {
  CsvOptions options;
  options.has_header = true;
  auto result = ParseCsv("f1,f2,label\n0.5,0.6,1\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 1u);
}

TEST(CsvParseTest, CustomLabelColumn) {
  CsvOptions options;
  options.label_column = 0;
  auto result = ParseCsv("1,0.7,0.8\n-1,0.9,1.0\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_features(), 2u);
  EXPECT_EQ(result.value().Label(0), kPositive);
  EXPECT_FLOAT_EQ(result.value().At(0, 0), 0.7f);
}

TEST(CsvParseTest, SkipsBlankLines) {
  auto result = ParseCsv("\n0.1,1\n\n0.2,-1\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_rows(), 2u);
}

TEST(CsvParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("justonefield\n").ok());
  EXPECT_FALSE(ParseCsv("0.1,abc\n").ok());
  EXPECT_FALSE(ParseCsv("0.1,7\n").ok());  // label 7 invalid
  CsvOptions options;
  options.label_column = 9;
  EXPECT_FALSE(ParseCsv("0.1,1\n", options).ok());
}

TEST(CsvRoundTripTest, SaveThenLoadPreservesData) {
  Dataset d(3);
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.125f, 0.25f, 0.5f}, kPositive).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.75f, 0.0f, 1.0f}, kNegative).ok());
  const std::string path = ::testing::TempDir() + "/treewm_csv_test.csv";
  ASSERT_TRUE(SaveCsv(d, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_rows(), d.num_rows());
  ASSERT_EQ(loaded.value().num_features(), d.num_features());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(loaded.value().Label(i), d.Label(i));
    for (size_t j = 0; j < d.num_features(); ++j) {
      EXPECT_FLOAT_EQ(loaded.value().At(i, j), d.At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvLoadTest, MissingFileFails) {
  EXPECT_FALSE(LoadCsv("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace treewm::data
