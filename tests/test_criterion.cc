// Unit tests for impurity criteria.

#include "tree/criterion.h"

#include <gtest/gtest.h>

#include <cmath>

namespace treewm::tree {
namespace {

TEST(ClassWeightsTest, AddRemoveAndMajority) {
  ClassWeights w;
  w.Add(+1, 2.0);
  w.Add(-1, 3.0);
  EXPECT_DOUBLE_EQ(w.Total(), 5.0);
  EXPECT_EQ(w.MajorityLabel(), -1);
  w.Remove(-1, 2.0);
  EXPECT_EQ(w.MajorityLabel(), +1);
  // Tie breaks positive (documented).
  w.Remove(+1, 1.0);
  EXPECT_DOUBLE_EQ(w.positive, 1.0);
  EXPECT_DOUBLE_EQ(w.negative, 1.0);
  EXPECT_EQ(w.MajorityLabel(), +1);
}

TEST(GiniTest, PureNodesAreZero) {
  EXPECT_DOUBLE_EQ(GiniImpurity({4.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0.0, 7.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0.0, 0.0}), 0.0);
}

TEST(GiniTest, BalancedIsMaximal) {
  EXPECT_DOUBLE_EQ(GiniImpurity({5.0, 5.0}), 0.5);
  // 2p(1-p) with p=0.25.
  EXPECT_DOUBLE_EQ(GiniImpurity({1.0, 3.0}), 2.0 * 0.25 * 0.75);
}

TEST(EntropyTest, PureNodesAreZero) {
  EXPECT_DOUBLE_EQ(EntropyImpurity({4.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyImpurity({0.0, 4.0}), 0.0);
}

TEST(EntropyTest, BalancedIsLogTwo) {
  EXPECT_NEAR(EntropyImpurity({3.0, 3.0}), std::log(2.0), 1e-12);
}

TEST(EntropyTest, WeightScaleInvariant) {
  EXPECT_NEAR(EntropyImpurity({1.0, 3.0}), EntropyImpurity({10.0, 30.0}), 1e-12);
}

TEST(ImpurityDispatchTest, MatchesDirectCalls) {
  ClassWeights w{2.0, 5.0};
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kGini, w), GiniImpurity(w));
  EXPECT_DOUBLE_EQ(Impurity(SplitCriterion::kEntropy, w), EntropyImpurity(w));
}

TEST(ImpurityDecreaseTest, PerfectSplitRecoversParentImpurity) {
  ClassWeights parent{4.0, 4.0};
  ClassWeights left{4.0, 0.0};
  ClassWeights right{0.0, 4.0};
  EXPECT_DOUBLE_EQ(ImpurityDecrease(SplitCriterion::kGini, parent, left, right), 0.5);
}

TEST(ImpurityDecreaseTest, UselessSplitIsZero) {
  ClassWeights parent{4.0, 4.0};
  ClassWeights left{2.0, 2.0};
  ClassWeights right{2.0, 2.0};
  EXPECT_NEAR(ImpurityDecrease(SplitCriterion::kGini, parent, left, right), 0.0, 1e-12);
}

TEST(ImpurityDecreaseTest, EmptyParentIsZero) {
  EXPECT_DOUBLE_EQ(
      ImpurityDecrease(SplitCriterion::kGini, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}), 0.0);
}

TEST(ImpurityDecreaseTest, WeightsMatter) {
  // Same counts, different weights: the heavier side dominates.
  ClassWeights parent{10.0, 1.0};
  ClassWeights left{10.0, 0.0};
  ClassWeights right{0.0, 1.0};
  const double gain = ImpurityDecrease(SplitCriterion::kGini, parent, left, right);
  EXPECT_GT(gain, 0.0);
  EXPECT_NEAR(gain, GiniImpurity(parent), 1e-12);
}

TEST(CriterionNameTest, RoundTrips) {
  EXPECT_STREQ(SplitCriterionName(SplitCriterion::kGini), "gini");
  EXPECT_STREQ(SplitCriterionName(SplitCriterion::kEntropy), "entropy");
  EXPECT_EQ(SplitCriterionFromName("gini").value(), SplitCriterion::kGini);
  EXPECT_EQ(SplitCriterionFromName("ENTROPY").value(), SplitCriterion::kEntropy);
  EXPECT_FALSE(SplitCriterionFromName("mse").ok());
}

}  // namespace
}  // namespace treewm::tree
