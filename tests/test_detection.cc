// Tests for the structural watermark detection attack (Table 2).

#include "attacks/detection.h"

#include <gtest/gtest.h>

#include "core/watermark.h"
#include "data/synthetic.h"

namespace treewm::attacks {
namespace {

using tree::DecisionTree;
using tree::TreeNode;

/// Builds a right-spine chain tree of the requested depth (depth >= 1):
/// depth d gives d internal nodes and d+1 leaves.
DecisionTree ChainTree(int depth) {
  std::vector<TreeNode> nodes(2 * static_cast<size_t>(depth) + 1);
  for (int i = 0; i < depth; ++i) {
    TreeNode& internal = nodes[2 * static_cast<size_t>(i)];
    internal.feature = 0;
    internal.threshold = 1.0f / static_cast<float>(i + 2);
    internal.left = 2 * i + 1;
    internal.right = 2 * i + 2;
    TreeNode& left_leaf = nodes[2 * static_cast<size_t>(i) + 1];
    left_leaf.feature = -1;
    left_leaf.label = i % 2 == 0 ? +1 : -1;
  }
  TreeNode& last = nodes.back();
  last.feature = -1;
  last.label = -1;
  return DecisionTree::FromNodes(std::move(nodes), 1).MoveValue();
}

TEST(MeasureStatisticTest, DepthAndLeaves) {
  auto forest =
      forest::RandomForest::FromTrees({ChainTree(2), ChainTree(5)}).MoveValue();
  auto depths = MeasureStatistic(forest, TreeStatistic::kDepth);
  EXPECT_EQ(depths, (std::vector<double>{2.0, 5.0}));
  auto leaves = MeasureStatistic(forest, TreeStatistic::kLeafCount);
  EXPECT_EQ(leaves, (std::vector<double>{3.0, 6.0}));
}

TEST(DetectByBandTest, ExtremeTreesAreLabeledMiddleIsUncertain) {
  // Depths: 1 (far below), 10 (far above), 5,5,5,5 (middle band).
  std::vector<tree::DecisionTree> trees{ChainTree(1),  ChainTree(10), ChainTree(5),
                                        ChainTree(5),  ChainTree(5),  ChainTree(5)};
  auto forest = forest::RandomForest::FromTrees(std::move(trees)).MoveValue();
  // Ground truth: small tree = 0, large tree = 1, middle = 0.
  auto truth = core::Signature::FromBits({0, 1, 0, 0, 0, 0}).MoveValue();
  auto report = DetectByBand(forest, TreeStatistic::kDepth, truth);
  EXPECT_EQ(report.guesses[0], BitGuess::kZero);
  EXPECT_EQ(report.guesses[1], BitGuess::kOne);
  for (size_t t = 2; t < 6; ++t) EXPECT_EQ(report.guesses[t], BitGuess::kUncertain);
  EXPECT_EQ(report.num_correct, 2u);
  EXPECT_EQ(report.num_wrong, 0u);
  EXPECT_EQ(report.num_uncertain, 4u);
}

TEST(DetectByThresholdTest, NoUncertaintyEverythingClassified) {
  std::vector<tree::DecisionTree> trees{ChainTree(2), ChainTree(8), ChainTree(3),
                                        ChainTree(9)};
  auto forest = forest::RandomForest::FromTrees(std::move(trees)).MoveValue();
  auto truth = core::Signature::FromBits({0, 1, 0, 1}).MoveValue();
  auto report = DetectByThreshold(forest, TreeStatistic::kDepth, truth);
  EXPECT_EQ(report.num_uncertain, 0u);
  EXPECT_EQ(report.num_correct + report.num_wrong, 4u);
  // Mean depth = 5.5: 2,3 -> bit 0; 8,9 -> bit 1 — all correct here.
  EXPECT_EQ(report.num_correct, 4u);
}

TEST(DetectionReportTest, MeanAndStdDevAreRecorded) {
  std::vector<tree::DecisionTree> trees{ChainTree(4), ChainTree(6)};
  auto forest = forest::RandomForest::FromTrees(std::move(trees)).MoveValue();
  auto truth = core::Signature::FromBits({0, 1}).MoveValue();
  auto report = DetectByThreshold(forest, TreeStatistic::kDepth, truth);
  EXPECT_DOUBLE_EQ(report.mean, 5.0);
  EXPECT_DOUBLE_EQ(report.stddev, 1.0);
}

TEST(GuessesToSignatureTest, FillsUncertainBits) {
  DetectionReport report;
  report.guesses = {BitGuess::kZero, BitGuess::kUncertain, BitGuess::kOne};
  auto filled0 = GuessesToSignature(report, 0).MoveValue();
  EXPECT_EQ(filled0.ToBitString(), "001");
  auto filled1 = GuessesToSignature(report, 1).MoveValue();
  EXPECT_EQ(filled1.ToBitString(), "011");
  EXPECT_FALSE(GuessesToSignature(report, 2).ok());
}

TEST(MeasureErrorRatesTest, CountsPerTreeDisagreementsFromOneBatchedQuery) {
  // A forest of two constant trees: the all-+1 tree errs exactly on the
  // negative rows, the all--1 tree exactly on the positive rows.
  auto plus = DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, +1}}, 2).MoveValue();
  auto minus = DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, -1}}, 2).MoveValue();
  auto forest = forest::RandomForest::FromTrees({plus, minus}).MoveValue();
  data::Dataset reference(2);
  ASSERT_TRUE(reference.AddRow(std::vector<float>{0.1f, 0.1f}, +1).ok());
  ASSERT_TRUE(reference.AddRow(std::vector<float>{0.2f, 0.2f}, +1).ok());
  ASSERT_TRUE(reference.AddRow(std::vector<float>{0.3f, 0.3f}, +1).ok());
  ASSERT_TRUE(reference.AddRow(std::vector<float>{0.9f, 0.9f}, -1).ok());
  const auto rates = MeasureErrorRates(forest, reference);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0.25);  // +1 tree misses the one negative row
  EXPECT_DOUBLE_EQ(rates[1], 0.75);  // -1 tree misses the three positive rows

  data::Dataset empty(2);
  const auto zero = MeasureErrorRates(forest, empty);
  EXPECT_EQ(zero, (std::vector<double>{0.0, 0.0}));
}

TEST(DetectByErrorRateTest, ThresholdsAtTheMeanLikeStrategy2) {
  auto plus = DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, +1}}, 2).MoveValue();
  auto minus = DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, -1}}, 2).MoveValue();
  auto forest = forest::RandomForest::FromTrees({plus, minus}).MoveValue();
  data::Dataset reference(2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        reference.AddRow(std::vector<float>{0.1f * static_cast<float>(i), 0.1f}, +1)
            .ok());
  }
  ASSERT_TRUE(reference.AddRow(std::vector<float>{0.9f, 0.9f}, -1).ok());
  // Error rates 0.25 / 0.75, mean 0.5: tree 0 -> bit 0, tree 1 -> bit 1.
  auto truth = core::Signature::FromBits({0, 1}).MoveValue();
  const auto report = DetectByErrorRate(forest, reference, truth);
  EXPECT_EQ(report.statistic, TreeStatistic::kErrorRate);
  EXPECT_STREQ(TreeStatisticName(report.statistic), "error rate");
  ASSERT_EQ(report.guesses.size(), 2u);
  EXPECT_EQ(report.guesses[0], BitGuess::kZero);
  EXPECT_EQ(report.guesses[1], BitGuess::kOne);
  EXPECT_EQ(report.num_correct, 2u);
  EXPECT_EQ(report.num_wrong, 0u);
  EXPECT_EQ(report.num_uncertain, 0u);
  EXPECT_DOUBLE_EQ(report.mean, 0.5);
}

TEST(DetectionOnRealWatermarkTest, AttackFailsAgainstAdjustedModel) {
  // The paper's security claim (§4.2.1): with Adjust(H) the attacker cannot
  // reconstruct σ. Accept the attack as "failed" when the threshold strategy
  // recovers at most ~70% of bits (random guessing gives 50%).
  auto data = data::synthetic::MakeBreastCancerLike(50);
  Rng rng(51);
  auto sigma = core::Signature::Random(24, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = 52;
  config.grid.max_depth_grid = {6, -1};
  config.grid.num_folds = 2;
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(data, sigma).MoveValue();

  for (auto stat : {TreeStatistic::kDepth, TreeStatistic::kLeafCount}) {
    auto threshold = DetectByThreshold(wm.model, stat, sigma);
    const double recovered = static_cast<double>(threshold.num_correct) /
                             static_cast<double>(sigma.length());
    EXPECT_LT(recovered, 0.8) << TreeStatisticName(stat);
    auto band = DetectByBand(wm.model, stat, sigma);
    // Band strategy must leave a large uncertain mass (Table 2's pattern).
    EXPECT_GT(band.num_uncertain, sigma.length() / 3) << TreeStatisticName(stat);
  }
}

}  // namespace
}  // namespace treewm::attacks
