// Tests for the Theorem-1 reduction: 3SAT <=> watermark forgery.

#include "reduction/reduction.h"

#include <gtest/gtest.h>

#include "sat/solver.h"

namespace treewm::reduction {
namespace {

using sat::Lit;

ThreeCnf PaperFigure2Formula() {
  // (x1 | x2) & (x2 | x3 | ~x4) from the paper's Figure 2 (0-indexed).
  ThreeCnf f;
  f.num_vars = 4;
  f.clauses = {{Lit::Make(0), Lit::Make(1)},
               {Lit::Make(1), Lit::Make(2), Lit::Make(3, true)}};
  return f;
}

TEST(FormulaToEnsembleTest, PaperFigure2Shape) {
  auto ensemble = FormulaToEnsemble(PaperFigure2Formula()).MoveValue();
  EXPECT_EQ(ensemble.num_trees(), 2u);  // one tree per clause
  EXPECT_EQ(ensemble.num_features(), 4u);
  // Clause trees have depth = number of literals.
  EXPECT_EQ(ensemble.trees()[0].Depth(), 2);
  EXPECT_EQ(ensemble.trees()[1].Depth(), 3);
  // All thresholds are zero.
  for (const auto& t : ensemble.trees()) {
    for (const auto& node : t.nodes()) {
      if (node.feature != -1) EXPECT_FLOAT_EQ(node.threshold, 0.0f);
    }
  }
}

TEST(FormulaToEnsembleTest, TreeOutputsMirrorClauseTruth) {
  auto f = PaperFigure2Formula();
  auto ensemble = FormulaToEnsemble(f).MoveValue();
  // Encode assignment as features: true -> +0.5, false -> -0.5.
  auto encode = [](std::vector<bool> a) {
    std::vector<float> x(a.size());
    for (size_t i = 0; i < a.size(); ++i) x[i] = a[i] ? 0.5f : -0.5f;
    return x;
  };
  for (uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<bool> assignment(4);
    for (size_t j = 0; j < 4; ++j) assignment[j] = (mask >> j) & 1;
    const auto x = encode(assignment);
    for (size_t c = 0; c < f.clauses.size(); ++c) {
      bool clause_true = false;
      for (const Lit& l : f.clauses[c]) {
        if (assignment[static_cast<size_t>(l.var())] != l.negated()) {
          clause_true = true;
          break;
        }
      }
      EXPECT_EQ(ensemble.trees()[c].Predict(x), clause_true ? +1 : -1)
          << "mask=" << mask << " clause=" << c;
    }
  }
}

TEST(ReductionQueryTest, AllZeroSignaturePositiveLabel) {
  auto query = ReductionQuery(5);
  EXPECT_EQ(query.signature_bits, std::vector<uint8_t>(5, 0));
  EXPECT_EQ(query.target_label, +1);
  EXPECT_LT(query.domain_lo, 0.0);
  EXPECT_GT(query.domain_hi, 0.0);
}

TEST(WitnessToAssignmentTest, PositiveMeansTrue) {
  auto assignment = WitnessToAssignment(std::vector<float>{0.5f, -0.5f, 0.0f});
  EXPECT_EQ(assignment, (std::vector<bool>{true, false, false}));
}

TEST(SolveThreeSatViaForgeryTest, SatisfiableFormula) {
  auto result = SolveThreeSatViaForgery(PaperFigure2Formula());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(PaperFigure2Formula().Evaluate(result.value()));
}

TEST(SolveThreeSatViaForgeryTest, UnsatisfiableFormula) {
  // (x0) & (~x0) via unit clauses.
  ThreeCnf f;
  f.num_vars = 3;
  f.clauses = {{Lit::Make(0)}, {Lit::Make(0, true)}};
  auto result = SolveThreeSatViaForgery(f);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SolveThreeSatViaForgeryTest, AllSevenLiteralCombinations) {
  // For a single clause, every assignment returned must satisfy it.
  for (int signs = 0; signs < 8; ++signs) {
    ThreeCnf f;
    f.num_vars = 3;
    f.clauses = {{Lit::Make(0, signs & 1), Lit::Make(1, signs & 2),
                  Lit::Make(2, signs & 4)}};
    auto result = SolveThreeSatViaForgery(f);
    ASSERT_TRUE(result.ok()) << "signs=" << signs;
    EXPECT_TRUE(f.Evaluate(result.value())) << "signs=" << signs;
  }
}

/// Equivalence sweep: on random formulas across the SAT/UNSAT spectrum the
/// reduction must agree with the CDCL solver (this is Theorem 1 in action).
struct ReductionParam {
  int num_vars;
  int num_clauses;
};

class ReductionEquivalenceSweep : public ::testing::TestWithParam<ReductionParam> {};

TEST_P(ReductionEquivalenceSweep, AgreesWithCdclSolver) {
  const ReductionParam p = GetParam();
  Rng rng(static_cast<uint64_t>(p.num_vars * 1000 + p.num_clauses));
  for (int iter = 0; iter < 25; ++iter) {
    auto f = RandomThreeCnf(p.num_vars, p.num_clauses, &rng).MoveValue();
    sat::Solver solver;
    const bool loaded = LoadIntoSolver(ToCnfFormula(f), &solver);
    const bool expect_sat = loaded && solver.Solve() == sat::SatResult::kSat;
    auto via_forgery = SolveThreeSatViaForgery(f);
    EXPECT_EQ(via_forgery.ok(), expect_sat) << "iter=" << iter;
    if (via_forgery.ok()) EXPECT_TRUE(f.Evaluate(via_forgery.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReductionEquivalenceSweep,
    ::testing::Values(ReductionParam{5, 10}, ReductionParam{8, 20},
                      ReductionParam{8, 34},   // near the 4.26 phase transition
                      ReductionParam{10, 43},  // near the 4.26 phase transition
                      ReductionParam{12, 30}, ReductionParam{6, 40}));

}  // namespace
}  // namespace treewm::reduction
