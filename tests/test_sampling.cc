// Unit and property tests for splitting / sampling.

#include "data/sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/synthetic.h"

namespace treewm::data {
namespace {

Dataset MakeImbalanced(size_t n, double positive_fraction) {
  return synthetic::MakeBlobs(/*seed=*/3, n, /*num_features=*/4, 2.0,
                              positive_fraction);
}

TEST(StratifiedSplitTest, PartitionIsExactAndDisjoint) {
  Dataset d = MakeImbalanced(200, 0.3);
  Rng rng(1);
  auto split = StratifiedSplit(d, 0.25, &rng);
  ASSERT_TRUE(split.ok());
  const auto& s = split.value();
  EXPECT_EQ(s.train.size() + s.test.size(), d.num_rows());
  std::set<size_t> seen(s.train.begin(), s.train.end());
  seen.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(seen.size(), d.num_rows());
}

TEST(StratifiedSplitTest, PreservesClassRatio) {
  Dataset d = MakeImbalanced(1000, 0.2);
  Rng rng(2);
  auto split = StratifiedSplit(d, 0.3, &rng);
  ASSERT_TRUE(split.ok());
  Dataset test = d.Subset(split.value().test);
  Dataset train = d.Subset(split.value().train);
  EXPECT_NEAR(test.PositiveFraction(), 0.2, 0.02);
  EXPECT_NEAR(train.PositiveFraction(), 0.2, 0.02);
}

TEST(StratifiedSplitTest, RejectsBadFractions) {
  Dataset d = MakeImbalanced(10, 0.5);
  Rng rng(3);
  EXPECT_FALSE(StratifiedSplit(d, 0.0, &rng).ok());
  EXPECT_FALSE(StratifiedSplit(d, 1.0, &rng).ok());
  EXPECT_FALSE(StratifiedSplit(d, -0.5, &rng).ok());
}

TEST(StratifiedSplitTest, BothSidesNonEmptyForTinyData) {
  Dataset d = MakeImbalanced(4, 0.5);
  Rng rng(4);
  auto split = StratifiedSplit(d, 0.01, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split.value().test.empty());
  EXPECT_FALSE(split.value().train.empty());
}

TEST(StratifiedSubsampleTest, SizeAndRatio) {
  Dataset d = MakeImbalanced(2000, 0.1);
  Rng rng(5);
  auto sample = StratifiedSubsample(d, 500, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().size(), 500u);
  Dataset sub = d.Subset(sample.value());
  EXPECT_NEAR(sub.PositiveFraction(), 0.1, 0.02);
}

TEST(StratifiedSubsampleTest, RejectsOversample) {
  Dataset d = MakeImbalanced(10, 0.5);
  Rng rng(6);
  EXPECT_FALSE(StratifiedSubsample(d, 11, &rng).ok());
}

TEST(StratifiedSubsampleTest, FullSampleIsPermutation) {
  Dataset d = MakeImbalanced(50, 0.4);
  Rng rng(7);
  auto sample = StratifiedSubsample(d, 50, &rng);
  ASSERT_TRUE(sample.ok());
  std::set<size_t> unique(sample.value().begin(), sample.value().end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(SampleTriggerIndicesTest, DistinctInRangeIndices) {
  Dataset d = MakeImbalanced(100, 0.5);
  Rng rng(8);
  auto trigger = SampleTriggerIndices(d, 10, &rng);
  ASSERT_TRUE(trigger.ok());
  EXPECT_EQ(trigger.value().size(), 10u);
  std::set<size_t> unique(trigger.value().begin(), trigger.value().end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t idx : trigger.value()) EXPECT_LT(idx, 100u);
}

TEST(SampleTriggerIndicesTest, RejectsDegenerateSizes) {
  Dataset d = MakeImbalanced(10, 0.5);
  Rng rng(9);
  EXPECT_FALSE(SampleTriggerIndices(d, 0, &rng).ok());
  EXPECT_FALSE(SampleTriggerIndices(d, 11, &rng).ok());
}

TEST(MakeTrainTestTest, MaterializesSplit) {
  Dataset d = MakeImbalanced(100, 0.5);
  Rng rng(10);
  auto tt = MakeTrainTest(d, 0.2, &rng);
  ASSERT_TRUE(tt.ok());
  EXPECT_EQ(tt.value().train.num_rows() + tt.value().test.num_rows(), 100u);
  EXPECT_EQ(tt.value().train.num_features(), d.num_features());
}

/// Property sweep: stratified split keeps ratios across fractions and skews.
struct SplitParam {
  double test_fraction;
  double positive_fraction;
};

class StratifiedSplitSweep : public ::testing::TestWithParam<SplitParam> {};

TEST_P(StratifiedSplitSweep, RatioPreserved) {
  const SplitParam p = GetParam();
  Dataset d = MakeImbalanced(1500, p.positive_fraction);
  Rng rng(42);
  auto split = StratifiedSplit(d, p.test_fraction, &rng);
  ASSERT_TRUE(split.ok());
  Dataset test = d.Subset(split.value().test);
  EXPECT_NEAR(test.PositiveFraction(), d.PositiveFraction(), 0.03);
  EXPECT_NEAR(static_cast<double>(test.num_rows()) / 1500.0, p.test_fraction, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, StratifiedSplitSweep,
    ::testing::Values(SplitParam{0.1, 0.5}, SplitParam{0.3, 0.5},
                      SplitParam{0.5, 0.5}, SplitParam{0.3, 0.1},
                      SplitParam{0.3, 0.9}, SplitParam{0.2, 0.63}));

}  // namespace
}  // namespace treewm::data
