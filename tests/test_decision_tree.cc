// Unit and property tests for the CART decision tree.

#include "tree/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace treewm::tree {
namespace {

data::Dataset Separable() {
  data::Dataset d(2);
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.1f, 0.5f}, -1).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.2f, 0.4f}, -1).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.8f, 0.6f}, +1).ok());
  EXPECT_TRUE(d.AddRow(std::vector<float>{0.9f, 0.3f}, +1).ok());
  return d;
}

TEST(TreeConfigTest, Validation) {
  TreeConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.max_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.max_depth = -1;
  config.max_leaf_nodes = 1;
  EXPECT_FALSE(config.Validate().ok());
  config.max_leaf_nodes = -1;
  config.min_samples_split = 1;
  EXPECT_FALSE(config.Validate().ok());
  config.min_samples_split = 2;
  config.min_samples_leaf = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(DecisionTreeTest, FitsSeparableDataPerfectly) {
  data::Dataset d = Separable();
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{});
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(tree.value().Accuracy(d), 1.0);
  EXPECT_EQ(tree.value().Depth(), 1);
  EXPECT_EQ(tree.value().NumLeaves(), 2u);
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  data::Dataset d(1);
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.1f}, +1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.9f}, +1).ok());
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  EXPECT_EQ(tree.NumNodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<float>{0.5f}), +1);
}

TEST(DecisionTreeTest, RejectsEmptyDataset) {
  data::Dataset d(2);
  EXPECT_FALSE(DecisionTree::Fit(d, {}, TreeConfig{}).ok());
}

TEST(DecisionTreeTest, RejectsBadWeightVector) {
  // Non-empty weights with size != num_rows fail with InvalidArgument
  // before training (never index out of range in the splitter); both the
  // sort-once engine and the retained reference enforce it.
  data::Dataset d = Separable();
  for (size_t bad_size : {1u, 3u, 5u}) {
    const std::vector<double> w(bad_size, 1.0);
    auto fast = DecisionTree::Fit(d, w, TreeConfig{});
    ASSERT_FALSE(fast.ok()) << "weights size " << bad_size;
    EXPECT_EQ(fast.status().code(), StatusCode::kInvalidArgument);
    auto reference = DecisionTree::FitReference(d, w, TreeConfig{});
    ASSERT_FALSE(reference.ok()) << "weights size " << bad_size;
    EXPECT_EQ(reference.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(DecisionTreeTest, RejectsOutOfRangeFeatureSubset) {
  data::Dataset d = Separable();
  EXPECT_FALSE(DecisionTree::Fit(d, {}, TreeConfig{}, {5}).ok());
  EXPECT_FALSE(DecisionTree::Fit(d, {}, TreeConfig{}, {-1}).ok());
}

TEST(DecisionTreeTest, MaxDepthBinds) {
  data::Dataset d = data::synthetic::MakeXor(1, 400);
  TreeConfig config;
  config.max_depth = 3;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  EXPECT_LE(tree.Depth(), 3);
}

TEST(DecisionTreeTest, MaxLeafNodesBinds) {
  data::Dataset d = data::synthetic::MakeXor(2, 400);
  TreeConfig config;
  config.max_leaf_nodes = 5;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  EXPECT_LE(tree.NumLeaves(), 5u);
}

TEST(DecisionTreeTest, BestFirstGrowthPicksHighestGainSplits) {
  // With a tight leaf budget, the tree must still find the dominant split.
  data::Dataset d = data::synthetic::MakeBlobs(3, 300, 4, 3.0);
  TreeConfig config;
  config.max_leaf_nodes = 2;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  EXPECT_EQ(tree.NumLeaves(), 2u);
  EXPECT_GT(tree.Accuracy(d), 0.9);
}

TEST(DecisionTreeTest, MinSamplesLeafLimitsFragmentation) {
  data::Dataset d = data::synthetic::MakeXor(4, 200);
  TreeConfig config;
  config.min_samples_leaf = 40;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  EXPECT_LE(tree.NumLeaves(), 200u / 40u);
}

TEST(DecisionTreeTest, SampleWeightsOverrideMajorities) {
  // Same point twice with conflicting labels: weight decides the leaf label.
  data::Dataset d(1);
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.5f}, +1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.5f}, -1).ok());
  auto plus = DecisionTree::Fit(d, {5.0, 1.0}, TreeConfig{}).MoveValue();
  EXPECT_EQ(plus.Predict(std::vector<float>{0.5f}), +1);
  auto minus = DecisionTree::Fit(d, {1.0, 5.0}, TreeConfig{}).MoveValue();
  EXPECT_EQ(minus.Predict(std::vector<float>{0.5f}), -1);
}

TEST(DecisionTreeTest, FeatureSubsetIsRespected) {
  // Label depends only on feature 0; a tree confined to feature 1 must not
  // split on feature 0.
  data::Dataset d = Separable();
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}, {1}).MoveValue();
  for (const TreeNode& node : tree.nodes()) {
    if (node.feature != -1) EXPECT_EQ(node.feature, 1);
  }
  EXPECT_EQ(tree.feature_subset(), std::vector<int>{1});
}

TEST(DecisionTreeTest, DeterministicAcrossRuns) {
  data::Dataset d = data::synthetic::MakeBlobs(6, 500, 6, 1.0);
  auto a = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  auto b = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  EXPECT_TRUE(a.StructurallyEqual(b));
}

TEST(DecisionTreeTest, PredictBatchMatchesScalarPredict) {
  data::Dataset d = data::synthetic::MakeBlobs(7, 100, 3, 1.5);
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  auto batch = tree.PredictBatch(d);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(batch[i], tree.Predict(d.Row(i)));
  }
}

TEST(DecisionTreeTest, LeafIndexForReachesALeaf) {
  data::Dataset d = Separable();
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const int leaf = tree.LeafIndexFor(d.Row(i));
    EXPECT_EQ(tree.nodes()[static_cast<size_t>(leaf)].feature, -1);
  }
}

TEST(ExtractLeavesTest, BoxesPartitionInputs) {
  // Every training point must satisfy the constraints of exactly the leaf it
  // is routed to.
  data::Dataset d = data::synthetic::MakeXor(8, 150);
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  auto leaves = tree.ExtractLeaves();
  EXPECT_EQ(leaves.size(), tree.NumLeaves());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const int routed = tree.LeafIndexFor(d.Row(i));
    size_t containing = 0;
    for (const auto& leaf : leaves) {
      bool inside = true;
      for (const auto& c : leaf.constraints) {
        const double x = d.At(i, static_cast<size_t>(c.feature));
        if (!(x > c.lo && x <= c.hi)) {
          inside = false;
          break;
        }
      }
      if (inside) {
        ++containing;
        EXPECT_EQ(leaf.node_index, routed);
        EXPECT_EQ(leaf.label,
                  tree.nodes()[static_cast<size_t>(routed)].label);
      }
    }
    EXPECT_EQ(containing, 1u);  // boxes tile the space
  }
}

TEST(ExtractLeavesTest, ConstraintsAreMergedPerFeature) {
  data::Dataset d = data::synthetic::MakeXor(9, 300);
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}).MoveValue();
  for (const auto& leaf : tree.ExtractLeaves()) {
    std::set<int> features;
    for (const auto& c : leaf.constraints) {
      EXPECT_TRUE(features.insert(c.feature).second)
          << "feature repeated in leaf constraints";
      EXPECT_LT(c.lo, c.hi);
    }
  }
}

TEST(TreeJsonTest, RoundTripPreservesStructureAndPredictions) {
  data::Dataset d = data::synthetic::MakeBlobs(10, 200, 4, 1.2);
  auto tree = DecisionTree::Fit(d, {}, TreeConfig{}, {0, 2}).MoveValue();
  auto parsed = DecisionTree::FromJson(tree.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().StructurallyEqual(tree));
  EXPECT_EQ(parsed.value().feature_subset(), tree.feature_subset());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_EQ(parsed.value().Predict(d.Row(i)), tree.Predict(d.Row(i)));
  }
}

TEST(FromNodesTest, ValidatesStructure) {
  // A single leaf is fine.
  EXPECT_TRUE(DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, +1}}, 3).ok());
  // Leaf with label 0 is invalid.
  EXPECT_FALSE(DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, 0}}, 3).ok());
  // Internal node with child pointing backwards.
  EXPECT_FALSE(
      DecisionTree::FromNodes({TreeNode{0, 0.5f, 0, 1, 0},
                               TreeNode{-1, 0, -1, -1, +1}},
                              3)
          .ok());
  // Feature out of range.
  EXPECT_FALSE(DecisionTree::FromNodes({TreeNode{7, 0.5f, 1, 2, 0},
                                        TreeNode{-1, 0, -1, -1, +1},
                                        TreeNode{-1, 0, -1, -1, -1}},
                                       3)
                   .ok());
  // Orphan node (never referenced).
  EXPECT_FALSE(DecisionTree::FromNodes({TreeNode{-1, 0, -1, -1, +1},
                                        TreeNode{-1, 0, -1, -1, -1}},
                                       3)
                   .ok());
  // Proper 3-node tree.
  EXPECT_TRUE(DecisionTree::FromNodes({TreeNode{0, 0.5f, 1, 2, 0},
                                       TreeNode{-1, 0, -1, -1, -1},
                                       TreeNode{-1, 0, -1, -1, +1}},
                                      3)
                  .ok());
}

/// Property sweep: depth/leaf limits hold simultaneously across settings.
struct LimitParam {
  int max_depth;
  int max_leaf_nodes;
};

class TreeLimitSweep : public ::testing::TestWithParam<LimitParam> {};

TEST_P(TreeLimitSweep, LimitsHoldAndTreeStaysUseful) {
  const LimitParam p = GetParam();
  data::Dataset d = data::synthetic::MakeBlobs(11, 600, 5, 2.0);
  TreeConfig config;
  config.max_depth = p.max_depth;
  config.max_leaf_nodes = p.max_leaf_nodes;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  if (p.max_depth != -1) EXPECT_LE(tree.Depth(), p.max_depth);
  if (p.max_leaf_nodes != -1) {
    EXPECT_LE(tree.NumLeaves(), static_cast<size_t>(p.max_leaf_nodes));
  }
  EXPECT_GT(tree.Accuracy(d), 0.85);  // blobs at separation 2 are easy
}

INSTANTIATE_TEST_SUITE_P(Limits, TreeLimitSweep,
                         ::testing::Values(LimitParam{2, -1}, LimitParam{4, -1},
                                           LimitParam{-1, 4}, LimitParam{-1, 16},
                                           LimitParam{3, 6}, LimitParam{-1, -1}));

}  // namespace
}  // namespace treewm::tree
