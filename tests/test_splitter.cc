// Unit tests for the exact split finder.

#include "tree/splitter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace treewm::tree {
namespace {

data::Dataset OneDimensional(std::vector<std::pair<float, int>> points) {
  data::Dataset d(1);
  for (auto [x, y] : points) {
    EXPECT_TRUE(d.AddRow(std::vector<float>{x}, y).ok());
  }
  return d;
}

std::vector<size_t> AllIndices(const data::Dataset& d) {
  std::vector<size_t> idx(d.num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

TEST(SplitterTest, FindsObviousSeparation) {
  data::Dataset d = OneDimensional({{0.1f, -1}, {0.2f, -1}, {0.8f, +1}, {0.9f, +1}});
  std::vector<double> weights(d.num_rows(), 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  auto split = splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 1);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->feature, 0);
  EXPECT_FLOAT_EQ(split->threshold, 0.5f);  // midpoint of 0.2 and 0.8
  EXPECT_NEAR(split->gain, 0.5, 1e-12);     // perfect split of balanced node
  EXPECT_EQ(split->left_count, 2u);
  EXPECT_EQ(split->right_count, 2u);
}

TEST(SplitterTest, NoSplitOnConstantFeature) {
  data::Dataset d = OneDimensional({{0.5f, -1}, {0.5f, +1}, {0.5f, -1}});
  std::vector<double> weights(d.num_rows(), 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  EXPECT_FALSE(splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 1)
                   .has_value());
}

TEST(SplitterTest, NoSplitOnPureNode) {
  data::Dataset d = OneDimensional({{0.1f, +1}, {0.9f, +1}});
  std::vector<double> weights(d.num_rows(), 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  EXPECT_FALSE(splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 1)
                   .has_value());
}

TEST(SplitterTest, MinSamplesLeafBlocksUnbalancedCuts) {
  data::Dataset d =
      OneDimensional({{0.1f, -1}, {0.5f, +1}, {0.6f, +1}, {0.7f, +1}, {0.8f, +1}});
  std::vector<double> weights(d.num_rows(), 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  // The ideal cut isolates the single negative; min_samples_leaf=2 forbids it.
  auto unconstrained =
      splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 1);
  ASSERT_TRUE(unconstrained.has_value());
  EXPECT_EQ(unconstrained->left_count, 1u);
  auto constrained =
      splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 2);
  ASSERT_TRUE(constrained.has_value());
  EXPECT_GE(constrained->left_count, 2u);
  EXPECT_GE(constrained->right_count, 2u);
}

TEST(SplitterTest, WeightsChangeTheChosenSplit) {
  // Two candidate cuts; upweighting the middle pair flips the winner.
  data::Dataset d(1);
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.1f}, -1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.4f}, +1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.6f}, +1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.9f}, -1).ok());
  std::vector<double> uniform(4, 1.0);
  Splitter s1(d, uniform, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  auto base = s1.FindBestSplit(idx, {0}, s1.ComputeWeights(idx), 1);
  ASSERT_TRUE(base.has_value());

  std::vector<double> skewed{100.0, 1.0, 1.0, 1.0};
  Splitter s2(d, skewed, SplitCriterion::kGini);
  auto heavy = s2.FindBestSplit(idx, {0}, s2.ComputeWeights(idx), 1);
  ASSERT_TRUE(heavy.has_value());
  // With the huge weight on the leftmost negative, isolating it is optimal.
  EXPECT_FLOAT_EQ(heavy->threshold, 0.25f);
}

TEST(SplitterTest, SearchesOnlyGivenFeatures) {
  data::Dataset d(2);
  // Feature 0 separates perfectly; feature 1 is noise.
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.0f, 0.3f}, -1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.1f, 0.9f}, -1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{0.9f, 0.2f}, +1).ok());
  ASSERT_TRUE(d.AddRow(std::vector<float>{1.0f, 0.8f}, +1).ok());
  std::vector<double> weights(4, 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  auto only_noise = splitter.FindBestSplit(idx, {1}, splitter.ComputeWeights(idx), 1);
  if (only_noise.has_value()) {
    EXPECT_EQ(only_noise->feature, 1);
    EXPECT_LT(only_noise->gain, 0.5);
  }
  auto both = splitter.FindBestSplit(idx, {0, 1}, splitter.ComputeWeights(idx), 1);
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->feature, 0);
}

TEST(SplitterTest, PartitionMatchesThreshold) {
  data::Dataset d = OneDimensional({{0.1f, -1}, {0.4f, +1}, {0.6f, -1}, {0.9f, +1}});
  std::vector<double> weights(4, 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  SplitCandidate split;
  split.feature = 0;
  split.threshold = 0.5f;
  std::vector<size_t> left;
  std::vector<size_t> right;
  splitter.Partition(AllIndices(d), split, &left, &right);
  EXPECT_EQ(left, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(right, (std::vector<size_t>{2, 3}));
}

TEST(SplitterTest, ThresholdNeverEqualsRightValue) {
  // Adjacent float values: the midpoint could round up; the splitter must
  // fall back so that "x <= t" still separates the two.
  const float a = 0.5f;
  const float b = std::nextafter(a, 1.0f);
  data::Dataset d = OneDimensional({{a, -1}, {b, +1}});
  std::vector<double> weights(2, 1.0);
  Splitter splitter(d, weights, SplitCriterion::kGini);
  auto idx = AllIndices(d);
  auto split = splitter.FindBestSplit(idx, {0}, splitter.ComputeWeights(idx), 1);
  ASSERT_TRUE(split.has_value());
  EXPECT_GE(split->threshold, a);
  EXPECT_LT(split->threshold, b);
}

}  // namespace
}  // namespace treewm::tree
