// Unit and property tests for the deterministic PRNG.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace treewm {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRealMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformReal();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformIntRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(29);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingleton) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(47);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(59);
  Rng b(59);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
}

/// Property sweep: bounded sampling is unbiased enough across bounds.
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, ChiSquareNotInsane) {
  const uint64_t bound = GetParam();
  Rng rng(61 + bound);
  std::vector<int> counts(bound, 0);
  const int n = 20000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  double chi2 = 0.0;
  for (int c : counts) {
    const double diff = c - expected;
    chi2 += diff * diff / expected;
  }
  // Very loose bound: chi2 with (bound-1) dof should be < 5*dof + 20.
  EXPECT_LT(chi2, 5.0 * static_cast<double>(bound - 1) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep, ::testing::Values(2, 3, 5, 10, 17));

}  // namespace
}  // namespace treewm
