// Tests for the forgery attack driver (paper §4.2.2).

#include "attacks/forgery_attack.h"

#include <gtest/gtest.h>

#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "smt/forgery_solver.h"

namespace treewm::attacks {
namespace {

struct Fixture {
  core::WatermarkedModel wm;
  data::Dataset test;
};

Fixture MakeFixture(uint64_t seed) {
  auto data = data::synthetic::MakeBreastCancerLike(seed);
  Rng rng(seed + 1);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  auto sigma = core::Signature::Random(16, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = seed + 2;
  config.grid.max_depth_grid = {6, -1};
  config.grid.num_folds = 2;
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(tt.train, sigma).MoveValue();
  return Fixture{std::move(wm), std::move(tt.test)};
}

TEST(ForgeryAttackTest, ForgedInstancesSatisfyPatternAndBall) {
  Fixture fx = MakeFixture(10);
  Rng rng(11);
  auto fake = core::Signature::Random(16, 0.5, &rng);
  ForgeryAttackConfig config;
  config.epsilon = 0.6;
  config.max_attempts = 25;
  auto report = RunForgeryAttack(fx.wm.model, fake, fx.test, config).MoveValue();
  EXPECT_EQ(report.attempts, 25u);
  EXPECT_EQ(report.forged + report.unsat + report.budget_exhausted, 25u);
  for (const auto& inst : report.instances) {
    EXPECT_TRUE(smt::ForgerySolver::PatternHolds(fx.wm.model, fake.bits(),
                                                 inst.label, inst.features));
    EXPECT_LE(inst.linf_distance, config.epsilon + 1e-6);
    EXPECT_LT(inst.source_row, fx.test.num_rows());
  }
}

TEST(ForgeryAttackTest, ForgedCountGrowsWithEpsilon) {
  // Figure 4's qualitative shape: larger distortion budget, more forgeries.
  Fixture fx = MakeFixture(20);
  Rng rng(21);
  auto fake = core::Signature::Random(16, 0.5, &rng);
  size_t previous = 0;
  bool monotone = true;
  for (double epsilon : {0.1, 0.5, 0.9}) {
    ForgeryAttackConfig config;
    config.epsilon = epsilon;
    config.max_attempts = 20;
    auto report = RunForgeryAttack(fx.wm.model, fake, fx.test, config).MoveValue();
    if (report.forged < previous) monotone = false;
    previous = report.forged;
  }
  EXPECT_TRUE(monotone);
}

TEST(ForgeryAttackTest, MaxForgedStopsEarly) {
  Fixture fx = MakeFixture(30);
  Rng rng(31);
  auto fake = core::Signature::Random(16, 0.5, &rng);
  ForgeryAttackConfig config;
  config.epsilon = 0.9;  // easy regime: most attempts succeed
  config.max_forged = 3;
  auto report = RunForgeryAttack(fx.wm.model, fake, fx.test, config).MoveValue();
  EXPECT_LE(report.forged, 3u);
  EXPECT_LT(report.attempts, fx.test.num_rows());
}

TEST(ForgeryAttackTest, ToDatasetCollectsInstances) {
  Fixture fx = MakeFixture(40);
  Rng rng(41);
  auto fake = core::Signature::Random(16, 0.5, &rng);
  ForgeryAttackConfig config;
  config.epsilon = 0.8;
  config.max_attempts = 10;
  auto report = RunForgeryAttack(fx.wm.model, fake, fx.test, config).MoveValue();
  auto forged = report.ToDataset(fx.test.num_features()).MoveValue();
  EXPECT_EQ(forged.num_rows(), report.forged);
  EXPECT_EQ(forged.num_features(), fx.test.num_features());

  // A feature-count mismatch is now a hard failure instead of a silently
  // shorter dataset.
  if (report.forged > 0) {
    EXPECT_FALSE(report.ToDataset(fx.test.num_features() + 1).ok());
  }
}

TEST(ForgeryAttackTest, ValidatesInputs) {
  Fixture fx = MakeFixture(50);
  Rng rng(51);
  auto wrong_length = core::Signature::Random(5, 0.5, &rng);
  ForgeryAttackConfig config;
  EXPECT_FALSE(RunForgeryAttack(fx.wm.model, wrong_length, fx.test, config).ok());
  auto fake = core::Signature::Random(16, 0.5, &rng);
  config.epsilon = 0.0;
  EXPECT_FALSE(RunForgeryAttack(fx.wm.model, fake, fx.test, config).ok());
  config.epsilon = 1.0;
  EXPECT_FALSE(RunForgeryAttack(fx.wm.model, fake, fx.test, config).ok());
}

TEST(ForgeryAttackTest, TrueSignatureForgesEasily) {
  // Sanity: with the *true* signature and the real trigger instances as
  // anchors, tiny distortion suffices (the pattern already holds at ε→0).
  Fixture fx = MakeFixture(60);
  ForgeryAttackConfig config;
  config.epsilon = 0.05;
  auto report = RunForgeryAttack(fx.wm.model, fx.wm.signature, fx.wm.trigger_set,
                                 config)
                    .MoveValue();
  EXPECT_EQ(report.forged, fx.wm.trigger_set.num_rows());
}

}  // namespace
}  // namespace treewm::attacks
