// Tests for the client-side retry/backoff helper: schedule shape,
// determinism under seeded jitter, retryability classification, and the
// RetryWithBackoff driver against a FakeClock.

#include "serve/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace treewm::serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(6);
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  return policy;
}

TEST(BackoffTest, ExponentialGrowthWithCap) {
  Backoff backoff(NoJitterPolicy());
  // 1ms, 2ms, 4ms, then capped at 6ms — but max_attempts=5 allows only 4
  // retries after the first attempt... which is 4 Next() calls; the 5th is
  // nullopt.
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(1)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(2)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(4)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(6)));  // capped
  EXPECT_EQ(backoff.Next(), std::nullopt);                  // budget spent
  EXPECT_EQ(backoff.retries(), 4u);
}

TEST(BackoffTest, SingleAttemptNeverRetries) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 1;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.Next(), std::nullopt);
}

TEST(BackoffTest, JitterStaysWithinBand) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 100;
  policy.jitter = 0.25;
  policy.max_backoff = milliseconds(1);  // freeze the base at 1ms
  Backoff backoff(policy);
  bool saw_below = false, saw_above = false;
  for (int i = 0; i < 99; ++i) {
    auto d = backoff.Next();
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, nanoseconds(milliseconds(1)) * 3 / 4);
    EXPECT_LE(*d, nanoseconds(milliseconds(1)) * 5 / 4);
    if (*d < nanoseconds(milliseconds(1))) saw_below = true;
    if (*d > nanoseconds(milliseconds(1))) saw_above = true;
  }
  EXPECT_TRUE(saw_below);
  EXPECT_TRUE(saw_above);
}

TEST(BackoffTest, SameSeedSameSchedule) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter = 0.5;
  policy.seed = 42;
  auto schedule = [&policy] {
    Backoff backoff(policy);
    std::vector<nanoseconds> out;
    while (auto d = backoff.Next()) out.push_back(*d);
    return out;
  };
  EXPECT_EQ(schedule(), schedule());
}

TEST(BackoffTest, ResetReplaysTheSchedule) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter = 0.5;
  policy.seed = 7;
  Backoff backoff(policy);
  std::vector<nanoseconds> first;
  while (auto d = backoff.Next()) first.push_back(*d);
  backoff.Reset();
  std::vector<nanoseconds> second;
  while (auto d = backoff.Next()) second.push_back(*d);
  EXPECT_EQ(first, second);
}

TEST(BackoffTest, DegenerateKnobsAreClamped) {
  RetryPolicy policy;
  policy.max_attempts = 0;   // -> 1
  policy.multiplier = 0.1;   // -> 1.0
  policy.jitter = 3.0;       // -> 1.0
  policy.initial_backoff = milliseconds(10);
  policy.max_backoff = milliseconds(1);  // -> raised to initial
  Backoff backoff(policy);
  EXPECT_EQ(backoff.Next(), std::nullopt);  // one attempt, no retries
}

TEST(RetryableTest, OnlyResourceExhaustedIsRetryable) {
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("shed")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsRetryableStatus(Status::FailedPrecondition("closed")));
  EXPECT_FALSE(IsRetryableStatus(Status::IoError("disk")));
}

TEST(RetryWithBackoffTest, RetriesUntilSuccess) {
  FakeClock clock;
  RetryPolicy policy = NoJitterPolicy();
  int calls = 0;
  Status st = RetryWithBackoff(policy, &clock, [&calls] {
    ++calls;
    return calls < 3 ? Status::ResourceExhausted("busy") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  // Slept 1ms + 2ms on the fake clock.
  EXPECT_EQ(clock.Now(), nanoseconds(milliseconds(3)));
}

TEST(RetryWithBackoffTest, GivesUpAfterMaxAttempts) {
  FakeClock clock;
  RetryPolicy policy = NoJitterPolicy();  // max_attempts = 5
  int calls = 0;
  Status st = RetryWithBackoff(policy, &clock, [&calls] {
    ++calls;
    return Status::ResourceExhausted("always busy");
  });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 5);
}

TEST(RetryWithBackoffTest, NonRetryableFailsImmediately) {
  FakeClock clock;
  int calls = 0;
  Status st = RetryWithBackoff(NoJitterPolicy(), &clock, [&calls] {
    ++calls;
    return Status::DeadlineExceeded("dead");
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.Now(), nanoseconds(0));  // never slept
}

TEST(RetryWithBackoffTest, WorksOverResultT) {
  FakeClock clock;
  int calls = 0;
  Result<int> result =
      RetryWithBackoff(NoJitterPolicy(), &clock, [&calls]() -> Result<int> {
        ++calls;
        if (calls < 2) return Status::ResourceExhausted("busy");
        return 41 + 1;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace treewm::serve
