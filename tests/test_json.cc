// Unit tests for the JSON value model, parser and writer.

#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace treewm {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(3.5).is_number());
  EXPECT_TRUE(JsonValue("hi").is_string());
  EXPECT_TRUE(JsonValue::MakeArray().is_array());
  EXPECT_TRUE(JsonValue::MakeObject().is_object());
}

TEST(JsonValueTest, NumericAccessors) {
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(JsonValue(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(JsonValue(-3).AsInt64(), -3);
}

TEST(JsonValueTest, ObjectSetFindGet) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("a", JsonValue(1));
  obj.Set("b", JsonValue("x"));
  EXPECT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  ASSERT_TRUE(obj.Get("b").ok());
  EXPECT_EQ(obj.Get("b").value()->AsString(), "x");
  EXPECT_EQ(obj.Get("zzz").status().code(), StatusCode::kNotFound);
}

TEST(JsonValueTest, ArrayAppend) {
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue(1));
  arr.Append(JsonValue(2));
  EXPECT_EQ(arr.AsArray().size(), 2u);
}

TEST(JsonDumpTest, CompactScalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(3).Dump(), "3");
  EXPECT_EQ(JsonValue(-17).Dump(), "-17");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, IntegralDoublesHaveNoDecimalPoint) {
  EXPECT_EQ(JsonValue(5.0).Dump(), "5");
  EXPECT_EQ(JsonValue(-2.0).Dump(), "-2");
}

TEST(JsonDumpTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonValue("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("a\nb").Dump(), "\"a\\nb\"");
  EXPECT_EQ(JsonValue("a\\b").Dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue(std::string("a\x01") + "b").Dump(), "\"a\\u0001b\"");
}

TEST(JsonDumpTest, ObjectKeysAreSorted) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zebra", JsonValue(1));
  obj.Set("apple", JsonValue(2));
  EXPECT_EQ(obj.Dump(), "{\"apple\":2,\"zebra\":1}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").value().is_null());
  EXPECT_TRUE(JsonValue::Parse("true").value().AsBool());
  EXPECT_FALSE(JsonValue::Parse("false").value().AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5").value().AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1e3").value().AsDouble(), -1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hey\"").value().AsString(), "hey");
}

TEST(JsonParseTest, NestedStructure) {
  auto result = JsonValue::Parse(R"({"a": [1, 2, {"b": null}], "c": "d"})");
  ASSERT_TRUE(result.ok());
  const JsonValue& doc = result.value();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->is_null());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b")").value().AsString(), "a\"b");
  EXPECT_EQ(JsonValue::Parse(R"("a\nb")").value().AsString(), "a\nb");
  EXPECT_EQ(JsonValue::Parse(R"("aAb")").value().AsString(), "aAb");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::Parse(R"("😀")").value().AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\escape\"").ok());
}

TEST(JsonParseTest, RejectsDeepNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonRoundTripTest, DumpThenParseIsIdentity) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue("treewm"));
  obj.Set("pi", JsonValue(3.14159265358979));
  obj.Set("count", JsonValue(123));
  obj.Set("flag", JsonValue(true));
  JsonValue arr = JsonValue::MakeArray();
  for (int i = 0; i < 5; ++i) arr.Append(JsonValue(i * 0.1));
  obj.Set("values", std::move(arr));

  auto parsed = JsonValue::Parse(obj.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), obj);

  auto pretty_parsed = JsonValue::Parse(obj.DumpPretty());
  ASSERT_TRUE(pretty_parsed.ok());
  EXPECT_EQ(pretty_parsed.value(), obj);
}

TEST(JsonRoundTripTest, DoublesSurvive) {
  for (double v : {0.1, 1e-10, 1e300, -123.456789012345678, 2.2250738585072014e-308}) {
    auto parsed = JsonValue::Parse(JsonValue(v).Dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().AsDouble(), v);
  }
}

TEST(JsonFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/treewm_json_test.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"x\": 1}").ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "{\"x\": 1}");
  std::remove(path.c_str());
}

TEST(JsonFileTest, MissingFileFails) {
  auto result = ReadFileToString("/nonexistent/path/nowhere.json");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace treewm
