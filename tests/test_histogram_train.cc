// Tests for the opt-in histogram (binned-gradient) training engine:
// binning correctness (distinct-value cut sets, equal-frequency caps, u16
// fallback), structural identity with the exact engine on integer-grid
// unit-weight data (where both engines search the same cuts and every
// accumulation is exact), accuracy parity on continuous data (the engine's
// actual contract — it is explicitly approximate), thread-count invariance
// of the chosen splits, degenerate shapes, and the mode/substrate rejection
// matrix. See src/tree/README.md "Histogram training engine".

#include "tree/binned_columns.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "boosting/gbdt.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "forest/random_forest.h"
#include "tree/decision_tree.h"
#include "tree/sorted_columns.h"

namespace treewm::tree {
namespace {

/// Same coarse-grid generator the exact-engine equivalence tests use: when
/// `levels` distinct values fit in max_bins, the histogram engine's cut set
/// EQUALS the exact engine's, and unit-weight sums are exact integers in
/// double — so the two engines must agree bit-for-bit, node for node.
data::Dataset MakeGridDataset(uint64_t seed, size_t rows, size_t features,
                              uint64_t levels) {
  Rng rng(seed);
  data::Dataset d(features);
  std::vector<float> row(features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < features; ++j) {
      row[j] = static_cast<float>(rng.UniformInt(levels)) /
               static_cast<float>(levels > 1 ? levels - 1 : 1);
    }
    const int label = rng.Bernoulli(0.5) ? data::kPositive : data::kNegative;
    EXPECT_TRUE(d.AddRow(row, label).ok());
  }
  return d;
}

/// The exact engine's threshold formula (splitter.h): midpoint between
/// adjacent distinct values, falling back to the lower value when rounding
/// would reach the upper one.
float MidpointThreshold(float lo, float hi) {
  float t = lo + (hi - lo) * 0.5f;
  if (t >= hi) t = lo;
  return t;
}

/// Equality up to threshold representation: same node array (features,
/// children, labels) in the same order AND every training row routed to the
/// same leaf index. On integer-grid data this is the strongest equality the
/// histogram engine can promise — its thresholds are midpoints of GLOBALLY
/// adjacent distinct values, while the exact engine uses the node-local
/// neighbors, so threshold floats legitimately differ below the root even
/// though the induced partition of the training rows is identical (see
/// src/tree/README.md).
bool SameTreeSamePartition(const DecisionTree& a, const DecisionTree& b,
                           const data::Dataset& d) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    if (na.feature != nb.feature || na.left != nb.left || na.right != nb.right ||
        na.label != nb.label) {
      return false;
    }
  }
  for (size_t i = 0; i < d.num_rows(); ++i) {
    if (a.LeafIndexFor(d.Row(i)) != b.LeafIndexFor(d.Row(i))) return false;
  }
  return true;
}

/// Regression analogue; leaf values must be BIT-equal (integer targets make
/// every sum exact in double, so the same partition forces the same means).
bool SameRegressionTreeSamePartition(const boosting::RegressionTree& a,
                                     const boosting::RegressionTree& b,
                                     const data::Dataset& d) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    if (na.feature != nb.feature || na.left != nb.left || na.right != nb.right) {
      return false;
    }
    if (na.feature == -1 && na.value != nb.value) return false;  // bit equality
  }
  for (size_t i = 0; i < d.num_rows(); ++i) {
    if (a.LeafIndexFor(d.Row(i)) != b.LeafIndexFor(d.Row(i))) return false;
  }
  return true;
}

bool RegressionTreesIdentical(const boosting::RegressionTree& a,
                              const boosting::RegressionTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& na = a.nodes()[i];
    const auto& nb = b.nodes()[i];
    if (na.feature != nb.feature || na.left != nb.left || na.right != nb.right) {
      return false;
    }
    if (na.feature != -1 && na.threshold != nb.threshold) return false;
    if (na.feature == -1 && na.value != nb.value) return false;  // bit equality
  }
  return true;
}

TreeConfig HistogramConfig(size_t max_bins = 255) {
  TreeConfig config;
  config.trainer_mode = TrainerMode::kHistogram;
  config.max_bins = max_bins;
  return config;
}

// ---------------------------------------------------------------------------
// Binning

TEST(BinnedColumnsTest, DistinctValuesGetExactEngineCuts) {
  data::Dataset d(1);
  for (float v : {0.1f, 0.4f, 0.4f, 0.7f, 0.1f}) {
    ASSERT_TRUE(d.AddRow(std::vector<float>{v}, data::kPositive).ok());
  }
  auto binned = BinnedColumns::Build(d).MoveValue();
  ASSERT_EQ(binned->num_bins(0), 3u);  // one bin per distinct value
  auto splits = binned->split_values(0);
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0], MidpointThreshold(0.1f, 0.4f));
  EXPECT_EQ(splits[1], MidpointThreshold(0.4f, 0.7f));
  const std::vector<uint16_t> expected_codes{0, 1, 1, 2, 0};
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(binned->code(0, i), expected_codes[i]);
  EXPECT_FALSE(binned->wide());
}

TEST(BinnedColumnsTest, EqualFrequencyRespectsCapAndNeverCutsTiedRuns) {
  Rng rng(11);
  data::Dataset d(2);
  std::vector<float> row(2);
  for (size_t i = 0; i < 500; ++i) {
    row[0] = static_cast<float>(rng.UniformReal());  // ~500 distinct values
    row[1] = i < 300 ? 0.5f : static_cast<float>(rng.UniformReal());  // big tie
    ASSERT_TRUE(d.AddRow(row, data::kPositive).ok());
  }
  auto binned = BinnedColumns::Build(d, BinnedOptions{8}).MoveValue();
  for (size_t f = 0; f < 2; ++f) {
    ASSERT_LE(binned->num_bins(f), 8u);
    ASSERT_GE(binned->num_bins(f), 2u);
    auto splits = binned->split_values(f);
    for (size_t b = 1; b < splits.size(); ++b) {
      EXPECT_LT(splits[b - 1], splits[b]);  // strictly increasing cuts
    }
    // Codes are order-consistent with values: the binning is a monotone map
    // and equal values always share a bin (tied runs are never split).
    for (size_t i = 0; i < 500; ++i) {
      for (size_t j = i + 1; j < 500; ++j) {
        const float vi = d.At(i, f);
        const float vj = d.At(j, f);
        if (vi == vj) {
          EXPECT_EQ(binned->code(f, i), binned->code(f, j));
        } else if (vi < vj) {
          EXPECT_LE(binned->code(f, i), binned->code(f, j));
        } else {
          EXPECT_GE(binned->code(f, i), binned->code(f, j));
        }
      }
    }
  }
}

TEST(BinnedColumnsTest, WideCodesKickInAbove256Bins) {
  // ~295 distinct grid values with room for one bin each -> u16 codes.
  data::Dataset d = MakeGridDataset(21, 1200, 2, 300);
  auto wide = BinnedColumns::Build(d, BinnedOptions{350}).MoveValue();
  EXPECT_TRUE(wide->wide());
  EXPECT_GT(wide->num_bins(0), 256u);
  // The default cap folds the same data into u8.
  auto narrow = BinnedColumns::Build(d).MoveValue();
  EXPECT_FALSE(narrow->wide());
  EXPECT_LE(narrow->num_bins(0), 255u);
}

TEST(BinnedColumnsTest, ConstantFeatureIsOneBinNoCuts) {
  data::Dataset d(2);
  Rng rng(31);
  for (size_t i = 0; i < 40; ++i) {
    std::vector<float> row{0.5f, static_cast<float>(rng.UniformReal())};
    ASSERT_TRUE(d.AddRow(row, data::kPositive).ok());
  }
  auto binned = BinnedColumns::Build(d).MoveValue();
  EXPECT_EQ(binned->num_bins(0), 1u);
  EXPECT_TRUE(binned->split_values(0).empty());
}

TEST(BinnedColumnsTest, RejectsBadArguments) {
  data::Dataset d = MakeGridDataset(41, 20, 2, 4);
  EXPECT_FALSE(BinnedColumns::Build(d, BinnedOptions{1}).ok());
  EXPECT_FALSE(BinnedColumns::Build(d, BinnedOptions{70000}).ok());
  EXPECT_FALSE(BinnedColumns::Build(data::Dataset(3)).ok());  // empty

  auto binned = BinnedColumns::Build(d).MoveValue();
  EXPECT_FALSE(ValidateBinnedMatch(nullptr, d).ok());
  data::Dataset other = MakeGridDataset(42, 30, 2, 4);
  EXPECT_FALSE(ValidateBinnedMatch(binned.get(), other).ok());
  EXPECT_TRUE(ValidateBinnedMatch(binned.get(), d).ok());
}

TEST(BinnedColumnsTest, BuildIsIdenticalAtEveryThreadCount) {
  data::Dataset d = MakeGridDataset(51, 600, 5, 40);
  auto serial = BinnedColumns::Build(d, BinnedOptions{16}, nullptr).MoveValue();
  for (size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    auto parallel = BinnedColumns::Build(d, BinnedOptions{16}, &pool).MoveValue();
    for (size_t f = 0; f < d.num_features(); ++f) {
      ASSERT_EQ(parallel->num_bins(f), serial->num_bins(f));
      auto a = serial->split_values(f);
      auto b = parallel->split_values(f);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
      for (size_t r = 0; r < d.num_rows(); ++r) {
        ASSERT_EQ(parallel->code(f, r), serial->code(f, r));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Structural identity with the exact engine where the cut sets coincide

TEST(HistogramStructuralTest, GridTreesMatchExactEnginePartitionForPartition) {
  // When every feature's distinct values fit in max_bins, the histogram
  // engine searches the same candidate PARTITIONS as the exact engine, and
  // unit-weight accumulations are exact integers — so the trees must have
  // the identical node array (same features, children, labels, numbering)
  // and route every training row to the same leaf. This pins the whole
  // grower: sweep order, tie breaks, best-first queue order, node
  // numbering. (Threshold floats differ below the root by design — the
  // histogram engine cuts at global bin boundaries.)
  size_t cases = 0;
  for (uint64_t levels : {4u, 16u, 64u}) {
    for (SplitCriterion criterion :
         {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
      for (int limits = 0; limits < 3; ++limits) {
        const uint64_t seed = 700 + cases;
        data::Dataset d = MakeGridDataset(seed, 200, 5, levels);
        TreeConfig exact_config;
        exact_config.criterion = criterion;
        if (limits == 1) {
          exact_config.max_leaf_nodes = 9;  // best-first growth
          exact_config.min_samples_leaf = 3;
        } else if (limits == 2) {
          exact_config.max_depth = 4;
          exact_config.min_samples_split = 8;
        }
        TreeConfig hist_config = exact_config;
        hist_config.trainer_mode = TrainerMode::kHistogram;
        auto exact = DecisionTree::Fit(d, {}, exact_config).MoveValue();
        auto hist = DecisionTree::Fit(d, {}, hist_config).MoveValue();
        EXPECT_TRUE(SameTreeSamePartition(hist, exact, d))
            << "levels=" << levels << " criterion=" << static_cast<int>(criterion)
            << " limits=" << limits;
        ++cases;
      }
    }
  }
  EXPECT_EQ(cases, 18u);
}

TEST(HistogramStructuralTest, WideGridTreesMatchExactThroughU16Codes) {
  data::Dataset d = MakeGridDataset(801, 1200, 3, 300);
  auto binned = BinnedColumns::Build(d, BinnedOptions{350}).MoveValue();
  ASSERT_TRUE(binned->wide());  // the u16 accumulate/partition paths run
  TreeConfig hist_config = HistogramConfig(350);
  hist_config.max_depth = 6;
  TreeConfig exact_config;
  exact_config.max_depth = 6;
  auto hist =
      DecisionTree::Fit(d, {}, hist_config, {}, nullptr, binned.get()).MoveValue();
  auto exact = DecisionTree::Fit(d, {}, exact_config).MoveValue();
  EXPECT_TRUE(SameTreeSamePartition(hist, exact, d));
}

TEST(HistogramStructuralTest, GridRegressionTreesMatchExactOnIntegerTargets) {
  for (uint64_t levels : {3u, 12u}) {
    for (size_t msl : {1u, 4u}) {
      const uint64_t seed = 900 + levels + msl;
      data::Dataset d = MakeGridDataset(seed, 220, 4, levels);
      Rng rng(seed + 1);
      std::vector<double> targets(220);
      for (auto& t : targets) {
        t = static_cast<double>(rng.UniformInt(9)) - 4.0;  // exact in double
      }
      boosting::RegressionTreeConfig exact_config;
      exact_config.max_depth = 5;
      exact_config.min_samples_leaf = msl;
      boosting::RegressionTreeConfig hist_config = exact_config;
      hist_config.trainer_mode = TrainerMode::kHistogram;
      auto exact = boosting::RegressionTree::Fit(d, targets, exact_config).MoveValue();
      auto hist = boosting::RegressionTree::Fit(d, targets, hist_config).MoveValue();
      EXPECT_TRUE(SameRegressionTreeSamePartition(hist, exact, d))
          << "levels=" << levels << " msl=" << msl;
    }
  }
}

TEST(HistogramStructuralTest, GridForestsMatchExactTreeForTree) {
  data::Dataset d = MakeGridDataset(1001, 240, 6, 10);
  forest::ForestConfig exact_config;
  exact_config.num_trees = 4;
  exact_config.feature_fraction = 0.5;
  exact_config.seed = 23;
  exact_config.num_threads = 1;
  auto exact = forest::RandomForest::Fit(d, {}, exact_config).MoveValue();

  forest::ForestConfig hist_config = exact_config;
  hist_config.tree.trainer_mode = TrainerMode::kHistogram;
  hist_config.num_threads = 2;  // intra-tree fan-out nests inside workers
  auto hist = forest::RandomForest::Fit(d, {}, hist_config).MoveValue();
  ASSERT_EQ(hist.num_trees(), exact.num_trees());
  for (size_t t = 0; t < hist.num_trees(); ++t) {
    EXPECT_TRUE(SameTreeSamePartition(hist.trees()[t], exact.trees()[t], d))
        << "tree " << t;
  }
}

TEST(HistogramStructuralTest, PrebuiltBinnedColumnsMatchInternalBuild) {
  data::Dataset d = MakeGridDataset(1101, 150, 4, 12);
  auto binned = BinnedColumns::Build(d).MoveValue();
  auto with = DecisionTree::Fit(d, {}, HistogramConfig(), {}, nullptr, binned.get())
                  .MoveValue();
  auto without = DecisionTree::Fit(d, {}, HistogramConfig()).MoveValue();
  EXPECT_TRUE(with.StructurallyEqual(without));
}

// ---------------------------------------------------------------------------
// Accuracy parity on continuous data — the approximate engine's contract

TEST(HistogramParityTest, AccuracyParityAcrossBinsCriteriaDepthsAndWeights) {
  // On continuous features the engines search different cut sets, so trees
  // differ; the contract is held-out accuracy parity. The sweep crosses
  // code width (32/255 = u8, 300 = u16), criterion, depth cap and weight
  // style.
  const data::Dataset train = data::synthetic::MakeBlobs(601, 600, 8, 1.2);
  const data::Dataset holdout = data::synthetic::MakeBlobs(602, 400, 8, 1.2);
  Rng weight_rng(603);
  std::vector<double> trigger_weights(600, 1.0);
  for (auto& w : trigger_weights) w = weight_rng.Bernoulli(0.2) ? 7.3 : 1.0;

  for (size_t max_bins : {32u, 255u, 300u}) {
    for (SplitCriterion criterion :
         {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
      for (int max_depth : {4, -1}) {
        for (int weight_kind : {0, 1}) {
          const std::vector<double> w =
              weight_kind == 0 ? std::vector<double>{} : trigger_weights;
          TreeConfig exact_config;
          exact_config.criterion = criterion;
          exact_config.max_depth = max_depth;
          TreeConfig hist_config = exact_config;
          hist_config.trainer_mode = TrainerMode::kHistogram;
          hist_config.max_bins = max_bins;
          auto exact = DecisionTree::Fit(train, w, exact_config).MoveValue();
          auto hist = DecisionTree::Fit(train, w, hist_config).MoveValue();
          EXPECT_NEAR(hist.Accuracy(holdout), exact.Accuracy(holdout), 0.05)
              << "bins=" << max_bins << " criterion=" << static_cast<int>(criterion)
              << " depth=" << max_depth << " weights=" << weight_kind;
        }
      }
    }
  }
}

TEST(HistogramParityTest, GbdtParityWithOneBinningPassAcrossRounds) {
  const data::Dataset train = data::synthetic::MakeBlobs(611, 800, 6, 1.1);
  const data::Dataset holdout = data::synthetic::MakeBlobs(612, 400, 6, 1.1);
  boosting::GbdtConfig exact_config;
  exact_config.num_trees = 15;
  exact_config.tree.max_depth = 3;
  boosting::GbdtConfig hist_config = exact_config;
  hist_config.tree.trainer_mode = TrainerMode::kHistogram;
  auto exact = boosting::Gbdt::Fit(train, exact_config).MoveValue();
  auto hist = boosting::Gbdt::Fit(train, hist_config).MoveValue();
  EXPECT_NEAR(hist.Accuracy(holdout), exact.Accuracy(holdout), 0.05);
  EXPECT_GT(hist.Accuracy(holdout), 0.7);  // parity with a broken exact engine
                                           // would pass the NEAR alone
}

TEST(HistogramParityTest, ForestParityOnContinuousData) {
  const data::Dataset train = data::synthetic::MakeBlobs(621, 500, 10, 1.0);
  const data::Dataset holdout = data::synthetic::MakeBlobs(622, 400, 10, 1.0);
  forest::ForestConfig exact_config;
  exact_config.num_trees = 10;
  exact_config.seed = 5;
  exact_config.num_threads = 1;
  forest::ForestConfig hist_config = exact_config;
  hist_config.tree.trainer_mode = TrainerMode::kHistogram;
  auto exact = forest::RandomForest::Fit(train, {}, exact_config).MoveValue();
  auto hist = forest::RandomForest::Fit(train, {}, hist_config).MoveValue();
  EXPECT_NEAR(hist.Accuracy(holdout), exact.Accuracy(holdout), 0.05);
  EXPECT_GT(hist.Accuracy(holdout), 0.7);
}

// ---------------------------------------------------------------------------
// Thread-count invariance of the chosen splits

TEST(HistogramThreadsTest, TreesAreInvariantAcrossThreadCounts) {
  // The per-feature fan-out reduces in slot order regardless of scheduling,
  // so the SAME tree — not an equally good one — must come out at every
  // thread count, on continuous weighted data where FP order would
  // otherwise drift.
  const data::Dataset d = data::synthetic::MakeBlobs(631, 500, 12, 1.2);
  Rng rng(632);
  std::vector<double> w(500);
  for (auto& x : w) x = 0.25 + rng.UniformReal() * 4.0;

  TreeConfig config = HistogramConfig();
  config.num_threads = 1;
  auto serial = DecisionTree::Fit(d, w, config).MoveValue();
  for (size_t threads : {2u, 5u}) {
    config.num_threads = threads;
    auto parallel = DecisionTree::Fit(d, w, config).MoveValue();
    EXPECT_TRUE(parallel.StructurallyEqual(serial)) << "threads=" << threads;
  }

  std::vector<double> targets(500);
  for (auto& t : targets) t = rng.Gaussian();
  boosting::RegressionTreeConfig reg_config;
  reg_config.trainer_mode = TrainerMode::kHistogram;
  reg_config.max_depth = 6;
  reg_config.num_threads = 1;
  auto reg_serial = boosting::RegressionTree::Fit(d, targets, reg_config).MoveValue();
  for (size_t threads : {2u, 5u}) {
    reg_config.num_threads = threads;
    auto reg_parallel =
        boosting::RegressionTree::Fit(d, targets, reg_config).MoveValue();
    EXPECT_TRUE(RegressionTreesIdentical(reg_parallel, reg_serial))
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Degenerate shapes

TEST(HistogramDegenerateTest, ConstantFeaturesYieldSingleLeaf) {
  data::Dataset d(3);
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(d.AddRow(std::vector<float>{0.2f, 0.7f, 0.0f},
                         i % 3 == 0 ? data::kPositive : data::kNegative)
                    .ok());
  }
  auto tree = DecisionTree::Fit(d, {}, HistogramConfig()).MoveValue();
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.nodes()[0].label, data::kNegative);  // majority
}

TEST(HistogramDegenerateTest, PureLabelsYieldSingleLeaf) {
  data::Dataset d = MakeGridDataset(641, 50, 4, 8);
  for (size_t i = 0; i < d.num_rows(); ++i) d.SetLabel(i, data::kPositive);
  auto tree = DecisionTree::Fit(d, {}, HistogramConfig()).MoveValue();
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.nodes()[0].label, data::kPositive);
}

TEST(HistogramDegenerateTest, LeafCapIsHonoredOnContinuousData) {
  const data::Dataset d = data::synthetic::MakeBlobs(651, 400, 6, 0.8);
  TreeConfig config = HistogramConfig();
  config.max_leaf_nodes = 7;
  auto tree = DecisionTree::Fit(d, {}, config).MoveValue();
  EXPECT_LE(tree.NumLeaves(), 7u);
  EXPECT_GE(tree.NumLeaves(), 2u);  // blobs are splittable
}

// ---------------------------------------------------------------------------
// Rejection matrix: modes and substrates must not mix

TEST(HistogramRejectionTest, SubstrateAndModeMixesAreInvalid) {
  data::Dataset d = MakeGridDataset(661, 80, 3, 6);
  auto sorted = SortedColumns::Build(d);
  auto binned = BinnedColumns::Build(d).MoveValue();
  const std::vector<double> targets(80, 0.5);

  // Histogram mode + sorted columns.
  EXPECT_FALSE(DecisionTree::Fit(d, {}, HistogramConfig(), {}, sorted.get()).ok());
  // Exact mode + binned columns.
  EXPECT_FALSE(
      DecisionTree::Fit(d, {}, TreeConfig{}, {}, nullptr, binned.get()).ok());
  // The reference trainer is the exact-mode spec.
  EXPECT_FALSE(DecisionTree::FitReference(d, {}, HistogramConfig()).ok());

  boosting::RegressionTreeConfig reg_hist;
  reg_hist.trainer_mode = TrainerMode::kHistogram;
  EXPECT_FALSE(
      boosting::RegressionTree::Fit(d, targets, reg_hist, sorted.get()).ok());
  boosting::RegressionTreeConfig reg_exact;
  EXPECT_FALSE(
      boosting::RegressionTree::Fit(d, targets, reg_exact, nullptr, binned.get())
          .ok());
  EXPECT_FALSE(boosting::RegressionTree::FitReference(d, targets, reg_hist).ok());

  boosting::GbdtConfig gbdt_config;
  gbdt_config.tree.trainer_mode = TrainerMode::kHistogram;
  gbdt_config.use_reference_trainer = true;
  EXPECT_FALSE(gbdt_config.Validate().ok());

  forest::ForestConfig forest_config;
  forest_config.tree.trainer_mode = TrainerMode::kHistogram;
  forest_config.use_reference_trainer = true;
  EXPECT_FALSE(forest_config.Validate().ok());

  forest::ForestConfig forest_hist;
  forest_hist.num_trees = 2;
  forest_hist.tree.trainer_mode = TrainerMode::kHistogram;
  EXPECT_FALSE(forest::RandomForest::Fit(d, {}, forest_hist, sorted).ok());
  forest::ForestConfig forest_exact;
  forest_exact.num_trees = 2;
  EXPECT_FALSE(forest::RandomForest::Fit(d, {}, forest_exact, nullptr, binned).ok());

  // Shape mismatch between dataset and prebuilt binning.
  data::Dataset other = MakeGridDataset(662, 60, 3, 6);
  EXPECT_FALSE(
      DecisionTree::Fit(other, {}, HistogramConfig(), {}, nullptr, binned.get())
          .ok());

  // Out-of-range bin cap is rejected at config validation.
  TreeConfig bad_bins = HistogramConfig(1);
  EXPECT_FALSE(DecisionTree::Fit(d, {}, bad_bins).ok());
}

TEST(HistogramRejectionTest, ExactRemainsTheDefaultMode) {
  EXPECT_EQ(TreeConfig{}.trainer_mode, TrainerMode::kExact);
  EXPECT_EQ(boosting::RegressionTreeConfig{}.trainer_mode, TrainerMode::kExact);
}

}  // namespace
}  // namespace treewm::tree
