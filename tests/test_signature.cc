// Unit tests for the owner signature.

#include "core/signature.h"

#include <gtest/gtest.h>

#include <cmath>

namespace treewm::core {
namespace {

TEST(SignatureTest, FromBitsValidates) {
  EXPECT_TRUE(Signature::FromBits({0, 1, 1, 0}).ok());
  EXPECT_FALSE(Signature::FromBits({}).ok());
  EXPECT_FALSE(Signature::FromBits({0, 2}).ok());
}

TEST(SignatureTest, CountsAndAccessors) {
  auto sigma = Signature::FromBits({1, 0, 1, 1, 0}).MoveValue();
  EXPECT_EQ(sigma.length(), 5u);
  EXPECT_EQ(sigma.NumOnes(), 3u);
  EXPECT_EQ(sigma.NumZeros(), 2u);
  EXPECT_EQ(sigma.bit(0), 1);
  EXPECT_EQ(sigma.bit(1), 0);
  EXPECT_EQ(sigma.ToBitString(), "10110");
}

TEST(SignatureTest, RandomHasExactOnesCount) {
  Rng rng(1);
  for (double fraction : {0.0, 0.1, 0.5, 0.6, 1.0}) {
    auto sigma = Signature::Random(40, fraction, &rng);
    EXPECT_EQ(sigma.length(), 40u);
    EXPECT_EQ(sigma.NumOnes(),
              static_cast<size_t>(std::llround(fraction * 40.0)));
  }
}

TEST(SignatureTest, RandomShufflesPositions) {
  Rng rng(2);
  auto a = Signature::Random(64, 0.5, &rng);
  auto b = Signature::Random(64, 0.5, &rng);
  EXPECT_NE(a.ToBitString(), b.ToBitString());  // astronomically unlikely to tie
}

TEST(SignatureTest, BitStringRoundTrip) {
  auto sigma = Signature::FromBitString("0101101").MoveValue();
  EXPECT_EQ(sigma.ToBitString(), "0101101");
  EXPECT_FALSE(Signature::FromBitString("01x1").ok());
  EXPECT_FALSE(Signature::FromBitString("").ok());
}

TEST(SignatureTest, TextEncodingRoundTrip) {
  const std::string owner = "Alice&Co 2025";
  auto sigma = Signature::FromText(owner);
  EXPECT_EQ(sigma.length(), owner.size() * 8);
  auto decoded = sigma.ToText();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), owner);
}

TEST(SignatureTest, TextDecodingRequiresByteAlignment) {
  auto sigma = Signature::FromBits({0, 1, 0}).MoveValue();
  EXPECT_FALSE(sigma.ToText().ok());
}

TEST(SignatureTest, KnownTextBits) {
  // 'A' = 0x41 = 01000001.
  auto sigma = Signature::FromText("A");
  EXPECT_EQ(sigma.ToBitString(), "01000001");
}

TEST(SignatureTest, HammingDistance) {
  auto a = Signature::FromBitString("0000").MoveValue();
  auto b = Signature::FromBitString("0101").MoveValue();
  EXPECT_EQ(a.HammingDistance(b).value(), 2u);
  EXPECT_EQ(a.HammingDistance(a).value(), 0u);
  auto c = Signature::FromBitString("00").MoveValue();
  EXPECT_FALSE(a.HammingDistance(c).ok());
}

TEST(SignatureTest, JsonRoundTrip) {
  auto sigma = Signature::FromBitString("110010").MoveValue();
  auto parsed = Signature::FromJson(sigma.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), sigma);
}

TEST(SignatureTest, EqualityOperator) {
  auto a = Signature::FromBitString("101").MoveValue();
  auto b = Signature::FromBitString("101").MoveValue();
  auto c = Signature::FromBitString("100").MoveValue();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace treewm::core
