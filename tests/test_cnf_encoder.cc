// Tests for the eager CNF backend, including cross-checks against the
// dedicated box solver (two complete procedures must agree).

#include "smt/cnf_encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/signature.h"
#include "data/synthetic.h"

namespace treewm::smt {
namespace {

using tree::DecisionTree;
using tree::TreeNode;

forest::RandomForest SmallTrainedModel(uint64_t seed, size_t num_trees) {
  auto data = data::synthetic::MakeBlobs(seed, 300, 5, 1.2);
  forest::ForestConfig config;
  config.num_trees = num_trees;
  config.seed = seed + 1;
  return forest::RandomForest::Fit(data, {}, config).MoveValue();
}

TEST(CnfForgeryBackendTest, SolvesPaperExample) {
  auto t1 = DecisionTree::FromNodes(
                {TreeNode{0, 5.0f, 1, 2, 0}, TreeNode{1, 3.0f, 3, 4, 0},
                 TreeNode{2, 7.0f, 5, 6, 0}, TreeNode{-1, 0, -1, -1, +1},
                 TreeNode{-1, 0, -1, -1, -1}, TreeNode{-1, 0, -1, -1, -1},
                 TreeNode{-1, 0, -1, -1, +1}},
                3)
                .MoveValue();
  auto t2 = DecisionTree::FromNodes(
                {TreeNode{0, 2.0f, 1, 2, 0}, TreeNode{1, 4.0f, 3, 4, 0},
                 TreeNode{2, 6.0f, 5, 6, 0}, TreeNode{-1, 0, -1, -1, +1},
                 TreeNode{-1, 0, -1, -1, -1}, TreeNode{-1, 0, -1, -1, -1},
                 TreeNode{-1, 0, -1, -1, +1}},
                3)
                .MoveValue();
  auto ensemble = forest::RandomForest::FromTrees({t1, t2}).MoveValue();
  ForgeryQuery query;
  query.signature_bits = {0, 1};
  query.target_label = +1;
  query.domain_lo = 0.0;
  query.domain_hi = 10.0;
  CnfEncodingStats stats;
  auto outcome = CnfForgeryBackend::Solve(ensemble, query, {}, &stats).MoveValue();
  ASSERT_EQ(outcome.result, sat::SatResult::kSat);
  EXPECT_TRUE(outcome.validated);
  EXPECT_GT(stats.num_atom_vars, 0u);
  EXPECT_GT(stats.num_selector_vars, 0u);
  EXPECT_GT(stats.num_clauses, stats.num_atom_vars);
}

TEST(CnfForgeryBackendTest, UnsatCase) {
  auto a = DecisionTree::FromNodes({TreeNode{0, 0.3f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, +1},
                                    TreeNode{-1, 0, -1, -1, -1}},
                                   1)
               .MoveValue();
  auto b = DecisionTree::FromNodes({TreeNode{0, 0.7f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, -1},
                                    TreeNode{-1, 0, -1, -1, +1}},
                                   1)
               .MoveValue();
  auto ensemble = forest::RandomForest::FromTrees({a, b}).MoveValue();
  ForgeryQuery query;
  query.signature_bits = {0, 0};
  query.target_label = +1;
  auto outcome = CnfForgeryBackend::Solve(ensemble, query).MoveValue();
  EXPECT_EQ(outcome.result, sat::SatResult::kUnsat);
}

TEST(CnfForgeryBackendTest, BudgetReturnsUnknownOrSolves) {
  auto model = SmallTrainedModel(3, 10);
  Rng rng(5);
  auto fake = core::Signature::Random(10, 0.5, &rng);
  ForgeryQuery query;
  query.signature_bits = fake.bits();
  query.target_label = +1;
  sat::SolveBudget budget;
  budget.max_conflicts = 1;
  auto outcome = CnfForgeryBackend::Solve(model, query, budget).MoveValue();
  // Either decided within one conflict or honestly unknown.
  EXPECT_TRUE(outcome.result == sat::SatResult::kUnknown ||
              outcome.result == sat::SatResult::kSat ||
              outcome.result == sat::SatResult::kUnsat);
}

/// The central property: both complete backends agree on satisfiability, and
/// SAT witnesses from each satisfy the required pattern.
struct AgreementParam {
  uint64_t seed;
  double epsilon;
};

class BackendAgreementSweep : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(BackendAgreementSweep, BoxAndCnfBackendsAgree) {
  const AgreementParam p = GetParam();
  auto model = SmallTrainedModel(p.seed, 8);
  auto data = data::synthetic::MakeBlobs(p.seed + 100, 50, 5, 1.2);
  Rng rng(p.seed);
  for (int trial = 0; trial < 6; ++trial) {
    auto fake = core::Signature::Random(8, 0.5, &rng);
    ForgeryQuery query;
    query.signature_bits = fake.bits();
    query.target_label = trial % 2 == 0 ? +1 : -1;
    const size_t row = rng.UniformInt(data.num_rows());
    query.anchor.assign(data.Row(row).begin(), data.Row(row).end());
    query.epsilon = p.epsilon;

    auto box_outcome = ForgerySolver::Solve(model, query).MoveValue();
    auto cnf_outcome = CnfForgeryBackend::Solve(model, query).MoveValue();
    EXPECT_EQ(box_outcome.result, cnf_outcome.result)
        << "seed=" << p.seed << " trial=" << trial;
    if (cnf_outcome.result == sat::SatResult::kSat) {
      EXPECT_TRUE(cnf_outcome.validated);
      for (size_t f = 0; f < cnf_outcome.witness.size(); ++f) {
        EXPECT_LE(std::fabs(cnf_outcome.witness[f] - query.anchor[f]),
                  p.epsilon + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEpsilons, BackendAgreementSweep,
    ::testing::Values(AgreementParam{1, 0.1}, AgreementParam{2, 0.3},
                      AgreementParam{3, 0.5}, AgreementParam{4, 0.7},
                      AgreementParam{5, 0.9}, AgreementParam{6, 0.2}));

}  // namespace
}  // namespace treewm::smt
