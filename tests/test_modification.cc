// Tests for the model-modification attacks (future-work extension).

#include "attacks/modification.h"

#include <gtest/gtest.h>

#include "core/verification.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::attacks {
namespace {

struct Fixture {
  core::WatermarkedModel wm;
  data::Dataset train;
  data::Dataset test;
};

Fixture MakeFixture(uint64_t seed) {
  auto data = data::synthetic::MakeBlobs(seed, 500, 8, 2.0);
  Rng rng(seed + 1);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  auto sigma = core::Signature::Random(16, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = seed + 2;
  config.grid.max_depth_grid = {4, -1};
  config.grid.num_folds = 2;
  config.trigger_training.forest.feature_fraction = 0.7;
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(tt.train, sigma).MoveValue();
  return Fixture{std::move(wm), std::move(tt.train), std::move(tt.test)};
}

core::VerificationReport VerifyAgainst(const Fixture& fx,
                                       const forest::RandomForest& model) {
  core::VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  core::ForestBlackBox box(model);
  Rng rng(99);
  return core::VerificationAuthority::Verify(box, request, &rng).MoveValue();
}

TEST(PruneToDepthTest, DepthIsCapped) {
  Fixture fx = MakeFixture(10);
  auto pruned = PruneToDepth(fx.wm.model, 2).MoveValue();
  EXPECT_EQ(pruned.num_trees(), fx.wm.model.num_trees());
  for (const auto& t : pruned.trees()) EXPECT_LE(t.Depth(), 2);
}

TEST(PruneToDepthTest, DepthZeroGivesStumps) {
  Fixture fx = MakeFixture(20);
  auto pruned = PruneToDepth(fx.wm.model, 0).MoveValue();
  for (const auto& t : pruned.trees()) {
    EXPECT_EQ(t.NumNodes(), 1u);
    EXPECT_EQ(t.Depth(), 0);
  }
}

TEST(PruneToDepthTest, GenerousDepthIsIdentity) {
  Fixture fx = MakeFixture(30);
  auto pruned = PruneToDepth(fx.wm.model, 64).MoveValue();
  for (size_t i = 0; i < fx.test.num_rows(); ++i) {
    EXPECT_EQ(pruned.PredictAll(fx.test.Row(i)),
              fx.wm.model.PredictAll(fx.test.Row(i)));
  }
}

TEST(PruneToDepthTest, AggressivePruningKillsWatermarkAndAccuracy) {
  Fixture fx = MakeFixture(40);
  ASSERT_TRUE(fx.wm.t0_converged && fx.wm.t1_converged);
  auto report_before = VerifyAgainst(fx, fx.wm.model);
  EXPECT_TRUE(report_before.verified);
  auto pruned = PruneToDepth(fx.wm.model, 1).MoveValue();
  auto report_after = VerifyAgainst(fx, pruned);
  // The watermark cannot survive stumps intact...
  EXPECT_LT(report_after.bit_match_rate, 1.0);
  // ...but the attacker also loses accuracy vs the original model.
  EXPECT_LT(pruned.Accuracy(fx.test), fx.wm.model.Accuracy(fx.test) + 1e-9);
}

TEST(PruneToDepthTest, RejectsNegativeDepth) {
  Fixture fx = MakeFixture(50);
  EXPECT_FALSE(PruneToDepth(fx.wm.model, -1).ok());
}

TEST(RelabelRandomLeavesTest, ZeroFractionIsIdentity) {
  Fixture fx = MakeFixture(60);
  Rng rng(1);
  auto tampered = RelabelRandomLeaves(fx.wm.model, 0.0, &rng).MoveValue();
  for (size_t i = 0; i < fx.test.num_rows(); ++i) {
    EXPECT_EQ(tampered.PredictAll(fx.test.Row(i)),
              fx.wm.model.PredictAll(fx.test.Row(i)));
  }
}

TEST(RelabelRandomLeavesTest, FullFractionFlipsEveryLeaf) {
  Fixture fx = MakeFixture(70);
  Rng rng(2);
  auto tampered = RelabelRandomLeaves(fx.wm.model, 1.0, &rng).MoveValue();
  for (size_t i = 0; i < 20; ++i) {
    const auto before = fx.wm.model.PredictAll(fx.test.Row(i));
    const auto after = tampered.PredictAll(fx.test.Row(i));
    for (size_t t = 0; t < before.size(); ++t) EXPECT_EQ(after[t], -before[t]);
  }
}

TEST(RelabelRandomLeavesTest, PartialFlippingDegradesVerification) {
  Fixture fx = MakeFixture(80);
  ASSERT_TRUE(fx.wm.t0_converged && fx.wm.t1_converged);
  Rng rng(3);
  auto tampered = RelabelRandomLeaves(fx.wm.model, 0.3, &rng).MoveValue();
  auto report = VerifyAgainst(fx, tampered);
  EXPECT_LT(report.bit_match_rate, 1.0);
  // Majority voting can absorb flips, so accuracy need not drop on easy
  // data; but it cannot exceed the clean model by much.
  EXPECT_LT(tampered.Accuracy(fx.test), fx.wm.model.Accuracy(fx.test) + 0.05);
}

TEST(RelabelRandomLeavesTest, RejectsBadFraction) {
  Fixture fx = MakeFixture(90);
  Rng rng(4);
  EXPECT_FALSE(RelabelRandomLeaves(fx.wm.model, -0.1, &rng).ok());
  EXPECT_FALSE(RelabelRandomLeaves(fx.wm.model, 1.1, &rng).ok());
}

TEST(ReplaceRandomTreesTest, KeepsEnsembleShape) {
  Fixture fx = MakeFixture(100);
  Rng rng(5);
  tree::TreeConfig config;
  auto replaced =
      ReplaceRandomTrees(fx.wm.model, 0.5, fx.train, config, &rng).MoveValue();
  EXPECT_EQ(replaced.num_trees(), fx.wm.model.num_trees());
  EXPECT_EQ(replaced.num_features(), fx.wm.model.num_features());
  // Accuracy stays reasonable (surrogate = the true training data here).
  EXPECT_GT(replaced.Accuracy(fx.test), 0.8);
}

TEST(ReplaceRandomTreesTest, FullReplacementErasesWatermark) {
  Fixture fx = MakeFixture(110);
  ASSERT_TRUE(fx.wm.t0_converged && fx.wm.t1_converged);
  Rng rng(6);
  tree::TreeConfig config;
  auto replaced =
      ReplaceRandomTrees(fx.wm.model, 1.0, fx.train, config, &rng).MoveValue();
  auto report = VerifyAgainst(fx, replaced);
  EXPECT_FALSE(report.verified);
  EXPECT_LT(report.bit_match_rate, 0.95);
}

TEST(ReplaceRandomTreesTest, PartialReplacementLeavesEvidence) {
  // Replacing a quarter of the trees still leaves 3/4 of the signature bits
  // intact — enough for a conclusive statistical ruling.
  Fixture fx = MakeFixture(120);
  ASSERT_TRUE(fx.wm.t0_converged && fx.wm.t1_converged);
  Rng rng(7);
  tree::TreeConfig config;
  auto replaced =
      ReplaceRandomTrees(fx.wm.model, 0.25, fx.train, config, &rng).MoveValue();
  auto report = VerifyAgainst(fx, replaced);
  EXPECT_GT(report.bit_match_rate, 0.70);
  EXPECT_TRUE(report.conclusive());
}

TEST(ReplaceRandomTreesTest, ValidatesInputs) {
  Fixture fx = MakeFixture(130);
  Rng rng(8);
  tree::TreeConfig config;
  EXPECT_FALSE(ReplaceRandomTrees(fx.wm.model, 2.0, fx.train, config, &rng).ok());
  data::Dataset wrong(3);
  EXPECT_FALSE(ReplaceRandomTrees(fx.wm.model, 0.5, wrong, config, &rng).ok());
}

TEST(VoteFlipRateTest, MeasuresBehaviouralDamageThroughVoteMatrices) {
  Fixture fx = MakeFixture(140);
  // Identity: a model never disagrees with itself.
  EXPECT_DOUBLE_EQ(VoteFlipRate(fx.wm.model, fx.wm.model, fx.test).MoveValue(),
                   0.0);

  // Untouched-model sanity: pruning to a generous depth flips nothing.
  auto identity = PruneToDepth(fx.wm.model, 1000).MoveValue();
  EXPECT_DOUBLE_EQ(VoteFlipRate(fx.wm.model, identity, fx.test).MoveValue(), 0.0);

  // Heavier tampering flips strictly more votes than light tampering.
  Rng light_rng(9);
  auto light = RelabelRandomLeaves(fx.wm.model, 0.05, &light_rng).MoveValue();
  Rng heavy_rng(9);
  auto heavy = RelabelRandomLeaves(fx.wm.model, 0.80, &heavy_rng).MoveValue();
  const double light_rate = VoteFlipRate(fx.wm.model, light, fx.test).MoveValue();
  const double heavy_rate = VoteFlipRate(fx.wm.model, heavy, fx.test).MoveValue();
  EXPECT_GE(light_rate, 0.0);
  EXPECT_LE(heavy_rate, 1.0);
  EXPECT_GT(heavy_rate, light_rate);
  EXPECT_GT(heavy_rate, 0.2);

  // Agreement with the scalar per-row comparison.
  size_t flipped = 0;
  for (size_t i = 0; i < fx.test.num_rows(); ++i) {
    const auto before = fx.wm.model.PredictAll(fx.test.Row(i));
    const auto after = heavy.PredictAll(fx.test.Row(i));
    for (size_t t = 0; t < before.size(); ++t) {
      if (before[t] != after[t]) ++flipped;
    }
  }
  EXPECT_DOUBLE_EQ(heavy_rate,
                   static_cast<double>(flipped) /
                       static_cast<double>(fx.test.num_rows() *
                                           fx.wm.model.num_trees()));

  // Shape validation and the empty-dataset convention.
  data::Dataset empty(fx.test.num_features());
  EXPECT_DOUBLE_EQ(VoteFlipRate(fx.wm.model, heavy, empty).MoveValue(), 0.0);
  data::Dataset wrong(3);
  EXPECT_FALSE(VoteFlipRate(fx.wm.model, heavy, wrong).ok());
}

}  // namespace
}  // namespace treewm::attacks
