// Tests for the sample-weight boosting loop (Algorithm 1 lines 1-9).

#include "core/train_with_trigger.h"

#include <gtest/gtest.h>

#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::core {
namespace {

TriggerTrainingConfig SmallConfig(size_t num_trees, uint64_t seed) {
  TriggerTrainingConfig config;
  config.forest.num_trees = num_trees;
  config.forest.seed = seed;
  config.forest.feature_fraction = 0.7;
  return config;
}

TEST(TrainWithTriggerTest, ConvergesOnCorrectLabels) {
  auto data = data::synthetic::MakeBlobs(1, 300, 6, 2.0);
  Rng rng(2);
  auto trigger = data::SampleTriggerIndices(data, 6, &rng).MoveValue();
  auto result = TrainWithTrigger(data, trigger, SmallConfig(8, 3)).MoveValue();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(AllTreesMatchTrigger(result.forest, data, trigger));
}

TEST(TrainWithTriggerTest, ConvergesOnFlippedLabels) {
  // The hard case: every tree must *misclassify* the trigger points.
  auto data = data::synthetic::MakeBlobs(4, 300, 6, 2.0);
  Rng rng(5);
  auto trigger = data::SampleTriggerIndices(data, 6, &rng).MoveValue();
  data::Dataset flipped = data;
  for (size_t idx : trigger) flipped.SetLabel(idx, -data.Label(idx));
  auto result = TrainWithTrigger(flipped, trigger, SmallConfig(8, 6)).MoveValue();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(AllTreesMatchTrigger(result.forest, flipped, trigger));
  // And w.r.t. the original labels every tree is wrong on the trigger.
  for (size_t idx : trigger) {
    for (const auto& t : result.forest.trees()) {
      EXPECT_EQ(t.Predict(data.Row(idx)), -data.Label(idx));
    }
  }
}

TEST(TrainWithTriggerTest, ZeroRoundsWhenAlreadySatisfied) {
  // Highly separable data: the first forest already classifies everything.
  auto data = data::synthetic::MakeBlobs(7, 300, 4, 5.0);
  Rng rng(8);
  auto trigger = data::SampleTriggerIndices(data, 4, &rng).MoveValue();
  TriggerTrainingConfig config = SmallConfig(5, 9);
  config.forest.feature_fraction = 1.0;
  auto result = TrainWithTrigger(data, trigger, config).MoveValue();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.boost_rounds, 0u);
  EXPECT_DOUBLE_EQ(result.final_trigger_weight, 1.0);
}

TEST(TrainWithTriggerTest, WeightsGrowWithRounds) {
  auto data = data::synthetic::MakeBlobs(10, 400, 6, 0.8);  // noisy: needs boosting
  Rng rng(11);
  auto trigger = data::SampleTriggerIndices(data, 8, &rng).MoveValue();
  data::Dataset flipped = data;
  for (size_t idx : trigger) flipped.SetLabel(idx, -data.Label(idx));
  auto result = TrainWithTrigger(flipped, trigger, SmallConfig(6, 12)).MoveValue();
  if (result.boost_rounds > 0) {
    EXPECT_GT(result.final_trigger_weight, 1.0);
    EXPECT_DOUBLE_EQ(result.final_trigger_weight,
                     1.0 + static_cast<double>(result.boost_rounds));
  }
}

TEST(TrainWithTriggerTest, ImpossibleTriggerReportsNonConvergence) {
  // Two identical instances with contradictory labels, both in the trigger:
  // no tree can satisfy both, so the loop must hit its bound and report
  // converged=false instead of hanging.
  data::Dataset data(2);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        data.AddRow(std::vector<float>{0.2f + 0.01f * static_cast<float>(i), 0.5f},
                    i % 2 == 0 ? +1 : -1)
            .ok());
  }
  ASSERT_TRUE(data.AddRow(std::vector<float>{0.9f, 0.9f}, +1).ok());
  ASSERT_TRUE(data.AddRow(std::vector<float>{0.9f, 0.9f}, -1).ok());
  TriggerTrainingConfig config = SmallConfig(3, 13);
  config.max_boost_rounds = 5;
  config.forest.feature_fraction = 1.0;
  auto result = TrainWithTrigger(data, {30, 31}, config).MoveValue();
  EXPECT_FALSE(result.converged);
}

TEST(TrainWithTriggerTest, ValidatesInputs) {
  auto data = data::synthetic::MakeBlobs(14, 50, 3, 2.0);
  TriggerTrainingConfig config = SmallConfig(3, 15);
  EXPECT_FALSE(TrainWithTrigger(data, {}, config).ok());
  EXPECT_FALSE(TrainWithTrigger(data, {999}, config).ok());
  config.weight_increment = 0.0;
  EXPECT_FALSE(TrainWithTrigger(data, {0}, config).ok());
}

TEST(TrainWithTriggerTest, ThreadCountInvariantBitForBit) {
  // End-to-end through the sort-once engine: the whole weight-boosting loop
  // (shared SortedColumns reused across every retrain) must produce the
  // same forest, round count and final weight at every thread count.
  auto data = data::synthetic::MakeBlobs(30, 350, 6, 0.9);
  Rng rng(31);
  auto trigger = data::SampleTriggerIndices(data, 6, &rng).MoveValue();
  data::Dataset flipped = data;
  for (size_t idx : trigger) flipped.SetLabel(idx, -data.Label(idx));

  TriggerTrainingConfig config = SmallConfig(6, 32);
  config.forest.num_threads = 1;
  auto serial = TrainWithTrigger(flipped, trigger, config).MoveValue();
  for (size_t threads : {2u, 4u}) {
    config.forest.num_threads = threads;
    auto parallel = TrainWithTrigger(flipped, trigger, config).MoveValue();
    EXPECT_EQ(parallel.converged, serial.converged);
    EXPECT_EQ(parallel.boost_rounds, serial.boost_rounds);
    EXPECT_DOUBLE_EQ(parallel.final_trigger_weight, serial.final_trigger_weight);
    ASSERT_EQ(parallel.forest.num_trees(), serial.forest.num_trees());
    for (size_t t = 0; t < serial.forest.num_trees(); ++t) {
      EXPECT_TRUE(
          parallel.forest.trees()[t].StructurallyEqual(serial.forest.trees()[t]))
          << "threads=" << threads << " tree=" << t;
    }
  }
}

TEST(AllTreesMatchTriggerTest, DetectsDeviations) {
  auto data = data::synthetic::MakeBlobs(16, 100, 3, 3.0);
  Rng rng(17);
  auto trigger = data::SampleTriggerIndices(data, 3, &rng).MoveValue();
  auto result = TrainWithTrigger(data, trigger, SmallConfig(4, 18)).MoveValue();
  ASSERT_TRUE(result.converged);
  // Flip a trigger label: the match must now fail.
  data::Dataset tampered = data;
  tampered.SetLabel(trigger[0], -data.Label(trigger[0]));
  EXPECT_FALSE(AllTreesMatchTrigger(result.forest, tampered, trigger));
}

/// Sweep: convergence across trigger sizes and tree counts.
struct TriggerParam {
  size_t trigger_size;
  size_t num_trees;
};

class TriggerSweep : public ::testing::TestWithParam<TriggerParam> {};

TEST_P(TriggerSweep, FlippedTriggersConverge) {
  const TriggerParam p = GetParam();
  auto data = data::synthetic::MakeBlobs(20 + p.trigger_size, 400, 8, 1.5);
  Rng rng(21);
  auto trigger = data::SampleTriggerIndices(data, p.trigger_size, &rng).MoveValue();
  data::Dataset flipped = data;
  for (size_t idx : trigger) flipped.SetLabel(idx, -data.Label(idx));
  auto result =
      TrainWithTrigger(flipped, trigger, SmallConfig(p.num_trees, 22)).MoveValue();
  EXPECT_TRUE(result.converged)
      << "k=" << p.trigger_size << " m=" << p.num_trees;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TriggerSweep,
                         ::testing::Values(TriggerParam{2, 4}, TriggerParam{4, 8},
                                           TriggerParam{8, 8}, TriggerParam{12, 6},
                                           TriggerParam{16, 10}));

}  // namespace
}  // namespace treewm::core
