// Unit tests for the leaf-option constraint builder.

#include "smt/tree_constraints.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace treewm::smt {
namespace {

using tree::DecisionTree;
using tree::TreeNode;

forest::RandomForest TwoStumps() {
  // Stump A: +1 iff x0 <= 0.5. Stump B: +1 iff x1 > 0.3.
  auto a = DecisionTree::FromNodes({TreeNode{0, 0.5f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, +1},
                                    TreeNode{-1, 0, -1, -1, -1}},
                                   2)
               .MoveValue();
  auto b = DecisionTree::FromNodes({TreeNode{1, 0.3f, 1, 2, 0},
                                    TreeNode{-1, 0, -1, -1, -1},
                                    TreeNode{-1, 0, -1, -1, +1}},
                                   2)
               .MoveValue();
  return forest::RandomForest::FromTrees({a, b}).MoveValue();
}

TEST(RequiredLabelTest, BitZeroKeepsLabelBitOneFlips) {
  EXPECT_EQ(RequiredLabel(+1, 0), +1);
  EXPECT_EQ(RequiredLabel(+1, 1), -1);
  EXPECT_EQ(RequiredLabel(-1, 0), -1);
  EXPECT_EQ(RequiredLabel(-1, 1), +1);
}

TEST(BuildTreeRequirementsTest, CollectsMatchingLeavesOnly) {
  auto forest = TwoStumps();
  auto reqs = BuildTreeRequirements(forest, {0, 0}, +1).MoveValue();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].required_label, +1);
  ASSERT_EQ(reqs[0].options.size(), 1u);  // one +1 leaf per stump
  // Stump A's +1 leaf: x0 <= 0.5.
  ASSERT_EQ(reqs[0].options[0].constraints.size(), 1u);
  EXPECT_EQ(reqs[0].options[0].constraints[0].feature, 0);
  EXPECT_DOUBLE_EQ(reqs[0].options[0].constraints[0].hi, 0.5);
  // Stump B's +1 leaf: x1 > 0.3.
  EXPECT_DOUBLE_EQ(reqs[1].options[0].constraints[0].lo, 0.30000001192092896);
}

TEST(BuildTreeRequirementsTest, BitOneSelectsOppositeLeaves) {
  auto forest = TwoStumps();
  auto reqs = BuildTreeRequirements(forest, {1, 1}, +1).MoveValue();
  EXPECT_EQ(reqs[0].required_label, -1);
  EXPECT_EQ(reqs[1].required_label, -1);
}

TEST(BuildTreeRequirementsTest, ValidatesInputs) {
  auto forest = TwoStumps();
  EXPECT_FALSE(BuildTreeRequirements(forest, {0}, +1).ok());       // wrong length
  EXPECT_FALSE(BuildTreeRequirements(forest, {0, 0}, 0).ok());     // bad label
  EXPECT_FALSE(BuildTreeRequirements(forest, {0, 0, 0}, +1).ok());
}

TEST(FilterOptionsTest, DropsIncompatibleLeaves) {
  auto forest = TwoStumps();
  auto reqs = BuildTreeRequirements(forest, {0, 0}, +1).MoveValue();
  Box box(2);
  // Force x0 > 0.9: stump A's +1 leaf (x0 <= 0.5) dies.
  ASSERT_TRUE(box.Constrain(0, 0.9, 2.0));
  const size_t remaining = FilterOptions(box, &reqs);
  EXPECT_EQ(remaining, 1u);
  EXPECT_TRUE(reqs[0].options.empty());
  EXPECT_EQ(reqs[1].options.size(), 1u);
}

TEST(FilterOptionsTest, KeepsEverythingUnderUniversalBox) {
  auto forest = TwoStumps();
  auto reqs = BuildTreeRequirements(forest, {0, 1}, +1).MoveValue();
  Box box(2);
  const size_t remaining = FilterOptions(box, &reqs);
  EXPECT_EQ(remaining, 2u);
}

TEST(BuildTreeRequirementsTest, DeepTreeConstraintCount) {
  // On a real trained tree every option's constraints mention <= depth
  // distinct features.
  auto data = data::synthetic::MakeXor(3, 300);
  forest::ForestConfig config;
  config.num_trees = 3;
  config.feature_fraction = 1.0;
  auto forest = forest::RandomForest::Fit(data, {}, config).MoveValue();
  auto reqs = BuildTreeRequirements(forest, {0, 0, 0}, +1).MoveValue();
  for (size_t t = 0; t < reqs.size(); ++t) {
    EXPECT_FALSE(reqs[t].options.empty());
    const int depth = forest.trees()[t].Depth();
    for (const auto& option : reqs[t].options) {
      EXPECT_LE(option.constraints.size(), static_cast<size_t>(depth));
    }
  }
}

}  // namespace
}  // namespace treewm::smt
