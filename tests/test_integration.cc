// End-to-end integration tests: the full Alice/Bob/Charlie story across the
// paper's dataset stand-ins, exercising every module together.

#include <gtest/gtest.h>

#include <cstdio>

#include "attacks/detection.h"
#include "attacks/forgery_attack.h"
#include "attacks/suppression.h"
#include "core/verification.h"
#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"
#include "io/model_io.h"
#include "reduction/reduction.h"
#include "sat/solver.h"

namespace treewm {
namespace {

struct Story {
  core::WatermarkedModel wm;
  data::Dataset train;
  data::Dataset test;
};

Story RunAlice(const std::string& dataset_name, uint64_t seed, size_t num_rows,
               size_t num_trees) {
  auto data = data::synthetic::MakeByName(dataset_name, seed, num_rows).MoveValue();
  Rng rng(seed + 1);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  auto sigma = core::Signature::Random(num_trees, 0.5, &rng);
  core::WatermarkConfig config;
  config.seed = seed + 2;
  config.grid.max_depth_grid = {8, -1};
  config.grid.num_folds = 2;
  config.trigger_fraction = 0.02;
  core::Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(tt.train, sigma).MoveValue();
  return Story{std::move(wm), std::move(tt.train), std::move(tt.test)};
}

class StoryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StoryTest, FullLifecycle) {
  const std::string name = GetParam();
  // Keep sizes integration-test friendly; benches run the full scale.
  const size_t rows = name == "breast-cancer" ? 0 : 1500;
  Story story = RunAlice(name, 1000, rows, 24);

  // 1. The watermark embedded (possibly with warnings on hard data).
  EXPECT_EQ(story.wm.model.num_trees(), 24u);

  // 2. Utility: accuracy within a few points of a standard model.
  forest::ForestConfig std_config;
  std_config.num_trees = 24;
  std_config.tree = story.wm.tuned_config;
  std_config.seed = 77;
  auto standard = forest::RandomForest::Fit(story.train, {}, std_config).MoveValue();
  EXPECT_GT(story.wm.model.Accuracy(story.test),
            standard.Accuracy(story.test) - 0.09)
      << name;

  // 3. Alice escrows the bundle and Charlie later reloads it.
  const std::string path = ::testing::TempDir() + "/story_" + name + ".json";
  ASSERT_TRUE(io::SaveBundle(io::BundleFrom(story.wm), path).ok());
  auto bundle = io::LoadBundle(path).MoveValue();
  std::remove(path.c_str());

  // 4. Charlie verifies Bob's stolen copy black-box.
  core::VerificationRequest request{bundle.signature, bundle.trigger_set,
                                    story.test};
  core::ForestBlackBox stolen(bundle.model);
  Rng charlie_rng(3);
  auto report =
      core::VerificationAuthority::Verify(stolen, request, &charlie_rng).MoveValue();
  if (story.wm.t0_converged && story.wm.t1_converged) {
    EXPECT_TRUE(report.verified) << name;
    EXPECT_LT(report.log10_p_value, -10.0) << name;
  } else {
    EXPECT_GT(report.bit_match_rate, 0.9) << name;
  }

  // 5. The same request against an innocent model finds nothing.
  core::ForestBlackBox innocent(standard);
  auto innocent_report =
      core::VerificationAuthority::Verify(innocent, request, &charlie_rng)
          .MoveValue();
  EXPECT_FALSE(innocent_report.verified) << name;

  // 6. Structural detection fails (Table 2's conclusion).
  auto detection = attacks::DetectByThreshold(
      story.wm.model, attacks::TreeStatistic::kDepth, story.wm.signature);
  EXPECT_LT(static_cast<double>(detection.num_correct) / 24.0, 0.85) << name;

  // 7. Trigger instances hide among test data (suppression defence).
  auto suppression =
      attacks::ProbeSuppression(story.wm.trigger_set, story.test).MoveValue();
  EXPECT_LT(suppression.trigger_nn_fraction, 0.5) << name;

  // 8. Low-distortion forgery is hard: at ε=0.05 the attacker forges at most
  // a small fraction of what Alice holds.
  Rng mallory_rng(4);
  auto fake = core::Signature::Random(24, 0.5, &mallory_rng);
  attacks::ForgeryAttackConfig attack;
  attack.epsilon = 0.05;
  attack.max_attempts = 30;
  attack.max_nodes_per_instance = 50000;
  auto forgery =
      attacks::RunForgeryAttack(story.wm.model, fake, story.test, attack)
          .MoveValue();
  EXPECT_LT(forgery.forged, 30u * 3 / 4) << name;
}

INSTANTIATE_TEST_SUITE_P(PaperDatasets, StoryTest,
                         ::testing::Values("breast-cancer", "ijcnn1", "mnist2-6"));

TEST(CrossModuleTest, ReductionEndToEndThroughEveryLayer) {
  // 3CNF -> ensemble -> forgery solver -> assignment -> formula evaluation,
  // with the CDCL solver as referee (Theorem 1 in miniature).
  Rng rng(9);
  for (int iter = 0; iter < 10; ++iter) {
    auto formula = reduction::RandomThreeCnf(7, 25, &rng).MoveValue();
    sat::Solver referee;
    const bool loaded = LoadIntoSolver(reduction::ToCnfFormula(formula), &referee);
    const bool expect = loaded && referee.Solve() == sat::SatResult::kSat;
    auto via_trees = reduction::SolveThreeSatViaForgery(formula);
    EXPECT_EQ(via_trees.ok(), expect);
  }
}

}  // namespace
}  // namespace treewm
