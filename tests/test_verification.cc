// Tests for the black-box verification protocol.

#include "core/verification.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/watermark.h"
#include "data/sampling.h"
#include "data/synthetic.h"

namespace treewm::core {
namespace {

struct Fixture {
  WatermarkedModel wm;
  data::Dataset test;
  forest::RandomForest innocent;
};

Fixture MakeFixture(uint64_t seed) {
  auto data = data::synthetic::MakeBlobs(seed, 500, 8, 2.0);
  Rng rng(seed + 1);
  auto tt = data::MakeTrainTest(data, 0.3, &rng).MoveValue();
  auto sigma = Signature::Random(12, 0.5, &rng);
  WatermarkConfig config;
  config.seed = seed + 2;
  config.grid.max_depth_grid = {4, -1};
  config.grid.num_folds = 2;
  config.trigger_training.forest.feature_fraction = 0.7;
  Watermarker watermarker(config);
  auto wm = watermarker.CreateWatermark(tt.train, sigma).MoveValue();

  forest::ForestConfig innocent_config;
  innocent_config.num_trees = 12;
  innocent_config.tree = wm.tuned_config;
  innocent_config.seed = seed + 3;
  innocent_config.feature_fraction = 0.7;
  auto innocent = forest::RandomForest::Fit(tt.train, {}, innocent_config).MoveValue();
  return Fixture{std::move(wm), std::move(tt.test), std::move(innocent)};
}

TEST(Log10BinomialTailTest, KZeroIsCertainAndKAboveNIsImpossible) {
  EXPECT_DOUBLE_EQ(Log10BinomialTail(10, 0, 0.3), 0.0);
  // Regression: k > n used to dereference max_element of an empty terms
  // vector (UB). The impossible event must report log10 P = -inf.
  EXPECT_EQ(Log10BinomialTail(10, 11, 0.3),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Log10BinomialTail(0, 1, 0.5),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Log10BinomialTail(5, 100, 0.99),
            -std::numeric_limits<double>::infinity());
}

TEST(Log10BinomialTailTest, DegenerateProbabilities) {
  EXPECT_EQ(Log10BinomialTail(10, 3, 0.0),
            -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(Log10BinomialTail(10, 3, 1.0), 0.0);
}

TEST(Log10BinomialTailTest, MatchesDirectSummation) {
  // P[X >= 2], X ~ Binomial(3, 0.5) = (3 + 1) / 8.
  EXPECT_NEAR(Log10BinomialTail(3, 2, 0.5), std::log10(4.0 / 8.0), 1e-12);
  // P[X >= n] = p^n.
  EXPECT_NEAR(Log10BinomialTail(6, 6, 0.25), 6.0 * std::log10(0.25), 1e-12);
  // Full tail P[X >= 1] = 1 - (1-p)^n.
  EXPECT_NEAR(Log10BinomialTail(4, 1, 0.2),
              std::log10(1.0 - std::pow(0.8, 4.0)), 1e-12);
  // Tail probabilities are monotone decreasing in k.
  double previous = 0.0;
  for (size_t k = 1; k <= 20; ++k) {
    const double tail = Log10BinomialTail(20, k, 0.4);
    EXPECT_LE(tail, previous) << "k=" << k;
    previous = tail;
  }
}

TEST(VerificationTest, WatermarkedModelVerifies) {
  Fixture fx = MakeFixture(100);
  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  ForestBlackBox suspect(fx.wm.model);
  Rng rng(1);
  auto report = VerificationAuthority::Verify(suspect, request, &rng).MoveValue();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.matching_instances, report.trigger_size);
  EXPECT_DOUBLE_EQ(report.bit_match_rate, 1.0);
  EXPECT_LT(report.log10_p_value, -6.0);      // overwhelming evidence
  EXPECT_LT(report.log10_bit_p_value, -20.0);  // bit-level statistic agrees
  EXPECT_TRUE(report.conclusive());
  // Control instances behave like coin flips w.r.t. the signature pattern.
  EXPECT_GT(report.control_match_rate, 0.2);
  EXPECT_LT(report.control_match_rate, 0.8);
}

TEST(VerificationTest, InnocentModelDoesNotVerify) {
  Fixture fx = MakeFixture(200);
  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  ForestBlackBox innocent(fx.innocent);
  Rng rng(2);
  auto report = VerificationAuthority::Verify(innocent, request, &rng).MoveValue();
  EXPECT_FALSE(report.verified);
  EXPECT_LT(report.bit_match_rate, 0.95);
  EXPECT_GT(report.log10_p_value, -3.0);  // no real evidence
  EXPECT_FALSE(report.conclusive());
}

TEST(VerificationTest, ShuffleOrderDoesNotChangeOutcome) {
  Fixture fx = MakeFixture(300);
  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  ForestBlackBox suspect(fx.wm.model);
  Rng rng_a(11);
  Rng rng_b(9999);
  auto a = VerificationAuthority::Verify(suspect, request, &rng_a).MoveValue();
  auto b = VerificationAuthority::Verify(suspect, request, &rng_b).MoveValue();
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.matching_instances, b.matching_instances);
  EXPECT_DOUBLE_EQ(a.bit_match_rate, b.bit_match_rate);
}

TEST(VerificationTest, WrongSignatureFailsVerification) {
  Fixture fx = MakeFixture(400);
  Rng rng(3);
  auto wrong = Signature::Random(fx.wm.signature.length(), 0.5, &rng);
  // Astronomically unlikely to equal the embedded signature; skip if it does.
  if (wrong == fx.wm.signature) GTEST_SKIP();
  VerificationRequest request{wrong, fx.wm.trigger_set, fx.test};
  ForestBlackBox suspect(fx.wm.model);
  auto report = VerificationAuthority::Verify(suspect, request, &rng).MoveValue();
  EXPECT_FALSE(report.verified);
}

TEST(VerificationTest, ValidatesInputs) {
  Fixture fx = MakeFixture(500);
  ForestBlackBox suspect(fx.wm.model);
  Rng rng(4);
  // Empty trigger set.
  VerificationRequest empty{fx.wm.signature, data::Dataset(8), fx.test};
  EXPECT_FALSE(VerificationAuthority::Verify(suspect, empty, &rng).ok());
  // Signature length mismatch.
  auto short_sig = Signature::FromBitString("01").MoveValue();
  VerificationRequest mismatched{short_sig, fx.wm.trigger_set, fx.test};
  EXPECT_FALSE(VerificationAuthority::Verify(suspect, mismatched, &rng).ok());
  // Feature mismatch between trigger and test sets.
  VerificationRequest bad_features{fx.wm.signature, fx.wm.trigger_set,
                                   data::Dataset(3)};
  EXPECT_FALSE(VerificationAuthority::Verify(suspect, bad_features, &rng).ok());
}

TEST(VerificationTest, EmptyDecoySetFallsBackToCoinFlipControlRate) {
  // With no decoys there are no control bits; the control match rate must
  // fall back to the documented 0.5 null rather than divide by zero, and a
  // genuine watermark still verifies.
  Fixture fx = MakeFixture(700);
  data::Dataset no_decoys(fx.test.num_features());
  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, no_decoys};
  ForestBlackBox suspect(fx.wm.model);
  Rng rng(6);
  auto report = VerificationAuthority::Verify(suspect, request, &rng).MoveValue();
  EXPECT_DOUBLE_EQ(report.control_match_rate, 0.5);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.matching_instances, report.trigger_size);
  EXPECT_TRUE(std::isfinite(report.log10_p_value));
  EXPECT_TRUE(std::isfinite(report.log10_bit_p_value));
}

TEST(VerificationTest, SingleInstanceTriggerVerifies) {
  Fixture fx = MakeFixture(800);
  ASSERT_GE(fx.wm.trigger_set.num_rows(), 1u);
  data::Dataset single = fx.wm.trigger_set.Subset({0});
  VerificationRequest request{fx.wm.signature, single, fx.test};
  ForestBlackBox suspect(fx.wm.model);
  Rng rng(7);
  auto report = VerificationAuthority::Verify(suspect, request, &rng).MoveValue();
  EXPECT_EQ(report.trigger_size, 1u);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.matching_instances, 1u);
  EXPECT_DOUBLE_EQ(report.bit_match_rate, 1.0);
  // One instance cannot be conclusive at the full-pattern level by itself,
  // but the statistics must stay well defined.
  EXPECT_LE(report.log10_p_value, 0.0);
  EXPECT_TRUE(std::isfinite(report.log10_p_value));
}

TEST(VerificationTest, DefaultVoteMatrixPathMatchesBatchedOverride) {
  // A black box that only implements the scalar QueryPredictAll must produce
  // the same report as the flat-engine override: the default
  // QueryPredictAllVotes loop and the batched path are interchangeable.
  Fixture fx = MakeFixture(900);

  class ScalarOnlyModel : public BlackBoxModel {
   public:
    explicit ScalarOnlyModel(const forest::RandomForest& forest)
        : forest_(forest) {}
    size_t NumTrees() const override { return forest_.num_trees(); }
    std::vector<int> QueryPredictAll(std::span<const float> x) const override {
      return forest_.PredictAll(x);
    }

   private:
    const forest::RandomForest& forest_;
  };

  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  ScalarOnlyModel scalar(fx.wm.model);
  ForestBlackBox batched(fx.wm.model);
  Rng rng_a(13);
  Rng rng_b(13);  // identical shuffle
  auto a = VerificationAuthority::Verify(scalar, request, &rng_a).MoveValue();
  auto b = VerificationAuthority::Verify(batched, request, &rng_b).MoveValue();
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.matching_instances, b.matching_instances);
  EXPECT_DOUBLE_EQ(a.bit_match_rate, b.bit_match_rate);
  EXPECT_DOUBLE_EQ(a.control_match_rate, b.control_match_rate);
  EXPECT_DOUBLE_EQ(a.log10_p_value, b.log10_p_value);
  EXPECT_DOUBLE_EQ(a.log10_bit_p_value, b.log10_bit_p_value);
}

TEST(VerificationTest, PartialTamperingLowersMatches) {
  // Simulate an attacker who (implausibly, per §3.3) identified one trigger
  // instance and flipped the model's behaviour there: verification must
  // count exactly trigger_size-1 matching instances.
  Fixture fx = MakeFixture(600);

  class TamperedModel : public BlackBoxModel {
   public:
    TamperedModel(const forest::RandomForest& forest, std::vector<float> target)
        : forest_(forest), target_(std::move(target)) {}
    size_t NumTrees() const override { return forest_.num_trees(); }
    std::vector<int> QueryPredictAll(std::span<const float> x) const override {
      auto votes = forest_.PredictAll(x);
      bool is_target = x.size() == target_.size();
      for (size_t f = 0; is_target && f < x.size(); ++f) {
        if (x[f] != target_[f]) is_target = false;
      }
      if (is_target) {
        for (int& v : votes) v = -v;  // suppress the pattern on the target
      }
      return votes;
    }

   private:
    const forest::RandomForest& forest_;
    std::vector<float> target_;
  };

  std::vector<float> target(fx.wm.trigger_set.Row(0).begin(),
                            fx.wm.trigger_set.Row(0).end());
  TamperedModel tampered(fx.wm.model, target);
  VerificationRequest request{fx.wm.signature, fx.wm.trigger_set, fx.test};
  Rng rng(5);
  auto report = VerificationAuthority::Verify(tampered, request, &rng).MoveValue();
  EXPECT_FALSE(report.verified);
  EXPECT_EQ(report.matching_instances, report.trigger_size - 1);
  // One suppressed instance cannot erase the statistical evidence.
  EXPECT_TRUE(report.conclusive());
}

}  // namespace
}  // namespace treewm::core
